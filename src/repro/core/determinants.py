"""Determinants: logged descriptions of nondeterministic events (Section 4).

Each determinant type corresponds to one source of nondeterminism from the
paper's taxonomy (Section 4.1) and carries exactly the information needed to
force the same outcome during recovery replay.  ``wire_size`` feeds the
overhead model: determinant bytes piggyback on buffers (Section 4.3) and
inflate network/serialisation cost — the throughput penalty of Figure 5.
"""

from __future__ import annotations

from typing import Any

from repro.net.serialization import payload_size


class Determinant:
    """Base determinant.

    ``_fp_memo`` caches the determinant's content fingerprint: the same
    determinant object is folded into a rolling log CRC once at its origin
    and once more at every replica that stores it (deltas forward
    determinants by reference), so the digest is computed once and reused.
    The slot is declared in ``repro.integrity.fingerprint.MEMO_SLOTS``:
    the fingerprint walk, ``__repr__``/``__eq__``/``__hash__`` (which use the
    subclass's own ``__slots__``), and corruption injection all ignore it.
    """

    __slots__ = ("_fp_memo",)

    kind = "base"

    def wire_size(self) -> int:
        return 8

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}" for slot in self.__slots__
        )
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and all(
                getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
            )
        )

    def __hash__(self):
        return hash((self.kind, tuple(repr(getattr(self, s)) for s in self.__slots__)))


class OrderDeterminant(Determinant):
    """Main thread consumed the buffer with ``seq`` from input ``channel``
    (record processing order, at buffer granularity — Section 4.2)."""

    __slots__ = ("channel", "seq")
    kind = "order"

    def __init__(self, channel: int, seq: int):
        self.channel = channel
        self.seq = seq

    def wire_size(self) -> int:
        return 6


class TimestampDeterminant(Determinant):
    """The Timestamp service returned ``value``.

    ``fresh`` distinguishes a real wall-clock read from a cache hit under
    the granularity optimisation of Section 4.2; cache hits delta-encode to
    a single byte, which is how the service cuts determinant volume by two
    orders of magnitude without giving up the 1:1 call/determinant replay
    discipline."""

    __slots__ = ("value", "fresh")
    kind = "timestamp"

    def __init__(self, value: float, fresh: bool = True):
        self.value = value
        self.fresh = fresh

    def wire_size(self) -> int:
        return 9 if self.fresh else 1


class TimerFiredDeterminant(Determinant):
    """Processing timer ``timer_id`` interleaved at stream ``offset``
    (records processed since epoch start)."""

    __slots__ = ("timer_id", "offset")
    kind = "timer"

    def __init__(self, timer_id: str, offset: int):
        self.timer_id = timer_id
        self.offset = offset

    def wire_size(self) -> int:
        return 10 + len(self.timer_id)


class RngSeedDeterminant(Determinant):
    """The RNG service reseeded with ``seed`` (once per epoch; Section 4.2
    logs seeds, not every drawn number)."""

    __slots__ = ("seed",)
    kind = "rng"

    def __init__(self, seed: int):
        self.seed = seed

    def wire_size(self) -> int:
        return 9


class ExternalCallDeterminant(Determinant):
    """An external (HTTP) call returned ``response`` for ``key``."""

    __slots__ = ("key", "response")
    kind = "http"

    def __init__(self, key: str, response: Any):
        self.key = key
        self.response = response

    def wire_size(self) -> int:
        return 2 + len(self.key) + payload_size(self.response)


class CustomDeterminant(Determinant):
    """User-registered nondeterministic logic returned ``result``
    (Listing 2/3)."""

    __slots__ = ("name", "result")
    kind = "custom"

    def __init__(self, name: str, result: Any):
        self.name = name
        self.result = result

    def wire_size(self) -> int:
        return 2 + len(self.name) + payload_size(self.result)


class BufferSizeDeterminant(Determinant):
    """Output queue cut buffer ``seq`` after ``num_elements`` elements
    (``size_bytes`` payload): the nondeterministic flush decision."""

    __slots__ = ("seq", "num_elements", "size_bytes")
    kind = "buffer_size"

    def __init__(self, seq: int, num_elements: int, size_bytes: int):
        self.seq = seq
        self.num_elements = num_elements
        self.size_bytes = size_bytes

    def wire_size(self) -> int:
        return 8


class BarrierInjectDeterminant(Determinant):
    """Source injected barrier ``checkpoint_id`` after stream ``offset``
    (RPC arrival point — Section 4.1, checkpoints & received RPCs)."""

    __slots__ = ("checkpoint_id", "offset")
    kind = "barrier"

    def __init__(self, checkpoint_id: int, offset: int):
        self.checkpoint_id = checkpoint_id
        self.offset = offset

    def wire_size(self) -> int:
        return 10


class WatermarkEmitDeterminant(Determinant):
    """Source emitted watermark ``value`` after stream ``offset`` (watermark
    generation is wall-clock driven — Section 4.1)."""

    __slots__ = ("value", "offset")
    kind = "watermark"

    def __init__(self, value: float, offset: int):
        self.value = value
        self.offset = offset

    def wire_size(self) -> int:
        return 12


class RpcDeterminant(Determinant):
    """A state-affecting RPC (other than barrier injection) was handled at
    stream ``offset``."""

    __slots__ = ("payload", "offset")
    kind = "rpc"

    def __init__(self, payload: Any, offset: int):
        self.payload = payload
        self.offset = offset

    def wire_size(self) -> int:
        return 6 + payload_size(self.payload)
