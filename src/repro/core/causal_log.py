"""The causal log (Section 4.3).

Each task keeps a *bundle* of epoch-segmented determinant logs:

* ``main`` — the main processing thread's determinants, and
* ``queue:<c>`` — one buffer-size log per output channel (the network
  threads' nondeterminism).

Whenever a buffer is dispatched on a channel, a **delta** — all bundle
entries the channel has not yet carried, plus (for determinant sharing
depths > 1) the bundles of upstream tasks within DSD-1 hops — piggybacks on
the buffer.  The receiver merges deltas into its *causal store* by epoch and
index, which makes merging idempotent: replayed/duplicated deltas are
harmless, the store simply keeps the longest prefix per epoch.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.determinants import Determinant
from repro.errors import DeterminantLogError, IntegrityError
from repro.integrity.fingerprint import combine, fingerprint

MAIN = "main"

#: Rolling-CRC seed for an empty epoch (any fixed nonzero constant works).
_CRC_SEED = 0x1EDC6F41

#: Shared empty-entries sentinel (never mutated; avoids allocating an empty
#: list on every miss in the delta assembly hot loop).
_NO_ENTRIES: List["Determinant"] = []


def _det_fp(det: Determinant) -> int:
    """Content fingerprint of a determinant, memoised on the object.

    Safe because determinants are immutable once appended and deltas forward
    them *by reference*: origin and every replica fold the identical object,
    so one computation serves them all.  Out-of-band tampering (the chaos
    engine) clears the memo on the object it mutates, and :meth:`EpochLog.
    verify` always recomputes from scratch, so detection is unaffected.
    """
    fp = getattr(det, "_fp_memo", None)
    if fp is None:
        fp = fingerprint(det)
        det._fp_memo = fp
    return fp


def queue_log_name(channel_index: int) -> str:
    return f"queue:{channel_index}"


class EpochLog:
    """An append-only determinant log segmented by checkpoint epoch.

    Wire sizes are tracked incrementally (`bytes_held`) so the memory
    experiments of Section 7.5 can sample determinant-pool usage cheaply.
    """

    def __init__(self):
        self._epochs: Dict[int, List[Determinant]] = {}
        self.bytes_held = 0
        #: Monotone change counter: bumped whenever an entry is added (by
        #: append or merge).  Dispatch cursors use it to skip whole logs that
        #: have not changed since a channel's last delta, which is the common
        #: case once determinant sharing fans bundles out.
        self.version = 0
        #: Rolling per-epoch content fingerprint, maintained incrementally
        #: by every API-mediated append/merge.  Out-of-band mutation (the
        #: chaos engine's determinant truncation) leaves it stale, which is
        #: exactly what :meth:`verify` detects.
        self._crcs: Dict[int, int] = {}
        #: Cumulative wire-byte prefix per epoch (``_cum[e][i]`` = bytes of
        #: ``entries[0..i]``), recorded at append/merge time — determinants
        #: are serialized into the log exactly once, so the append-time size
        #: is the size every later delta ships.  Lets delta assembly price a
        #: slice in O(1) instead of re-walking every determinant.
        self._cum: Dict[int, List[int]] = {}
        self._sorted_epochs: Optional[List[int]] = None
        #: Per-output-channel dispatch state, owned by the CausalLogManager
        #: holding this log: channel -> ``[version at last delta,
        #: {epoch: entries sent}]``.  Logs are never shared between managers
        #: (merges copy into private lists), so keeping the cursor on the log
        #: replaces the tuple-keyed global cursor dict the delta hot loop
        #: used to hash into.
        self._chan: Dict[int, List[Any]] = {}

    def append(self, epoch: int, determinant: Determinant) -> int:
        """Append and return the entry's index within its epoch."""
        entries = self._epochs.get(epoch)
        if entries is None:
            entries = self._epochs[epoch] = []
            self._cum[epoch] = []
            self._sorted_epochs = None
        size = determinant.wire_size()
        cum = self._cum[epoch]
        cum.append((cum[-1] if cum else 0) + size)
        entries.append(determinant)
        self.version += 1
        self.bytes_held += size
        self._crcs[epoch] = combine(
            self._crcs.get(epoch, _CRC_SEED), _det_fp(determinant)
        )
        return len(entries) - 1

    def entries(self, epoch: int) -> List[Determinant]:
        """Entries of ``epoch`` — possibly a shared empty list; callers must
        treat the result as read-only."""
        found = self._epochs.get(epoch)
        return found if found is not None else _NO_ENTRIES

    def slice_bytes(self, epoch: int, start: int, end: int) -> int:
        """Wire bytes of ``entries(epoch)[start:end]`` in O(1), from the
        append-time prefix sums."""
        if start >= end:
            return 0
        cum = self._cum[epoch]
        return cum[end - 1] - (cum[start - 1] if start else 0)

    def epochs(self) -> List[int]:
        """Epochs in ascending order.  The returned list is a cached view —
        callers must not mutate it."""
        cached = self._sorted_epochs
        if cached is None:
            cached = self._sorted_epochs = sorted(self._epochs)
        return cached

    def length(self, epoch: int) -> int:
        return len(self._epochs.get(epoch, ()))

    def truncate_before(self, epoch: int) -> int:
        """Drop epochs earlier than ``epoch`` (checkpoint complete)."""
        stale = [e for e in self._epochs if e < epoch]
        dropped = sum(len(self._epochs[e]) for e in stale)
        for e in stale:
            cum = self._cum.pop(e, None)
            if cum:
                self.bytes_held -= cum[-1]
            else:
                self.bytes_held -= sum(d.wire_size() for d in self._epochs[e])
            del self._epochs[e]
            self._crcs.pop(e, None)
        if stale:
            self._sorted_epochs = None
        return dropped

    def merge_slice(self, epoch: int, base_index: int, entries: List[Determinant]) -> None:
        """Idempotent merge of a delta slice: extend the epoch's entries with
        whatever part of ``entries`` lies beyond what we already hold."""
        stored = self._epochs.get(epoch)
        if stored is None:
            stored = self._epochs[epoch] = []
            self._cum[epoch] = []
            self._sorted_epochs = None
        have = len(stored)
        if base_index > have:
            raise DeterminantLogError(
                f"delta gap: have {have} entries of epoch {epoch}, "
                f"delta starts at {base_index}"
            )
        new_from = have - base_index
        if new_from < len(entries):
            fresh = entries[new_from:]
            stored.extend(fresh)
            self.version += 1
            cum = self._cum.setdefault(epoch, [])
            before = total = cum[-1] if cum else 0
            crc = self._crcs.get(epoch, _CRC_SEED)
            for det in fresh:
                total += det.wire_size()
                cum.append(total)
                crc = combine(crc, _det_fp(det))
            self._crcs[epoch] = crc
            self.bytes_held += total - before

    def verify(self, name: str = "") -> None:
        """Raise :class:`IntegrityError` if any epoch's entries no longer
        match its rolling fingerprint.  Epochs without a recorded CRC (e.g.
        a transient recovery bundle assembled by :func:`merge_bundles`) are
        skipped — they were never sealed."""
        for epoch, expected in self._crcs.items():
            crc = _CRC_SEED
            for det in self._epochs.get(epoch, ()):
                crc = combine(crc, fingerprint(det))
            if crc != expected:
                raise IntegrityError(
                    "determinant-log",
                    f"{name}@epoch{epoch}",
                    expected=expected,
                    actual=crc,
                )

    def size_bytes(self) -> int:
        return sum(
            det.wire_size() for entries in self._epochs.values() for det in entries
        )

    def total_entries(self) -> int:
        return sum(len(entries) for entries in self._epochs.values())


class LogBundle:
    """All of one task's logs: main thread + one per output channel."""

    def __init__(self, num_output_channels: int = 0):
        self.logs: Dict[str, EpochLog] = {MAIN: EpochLog()}
        for c in range(num_output_channels):
            self.logs[queue_log_name(c)] = EpochLog()

    def log(self, name: str) -> EpochLog:
        if name not in self.logs:
            self.logs[name] = EpochLog()
        return self.logs[name]

    def truncate_before(self, epoch: int) -> int:
        return sum(log.truncate_before(epoch) for log in self.logs.values())

    def verify(self, owner: str = "") -> None:
        """Verify every log's rolling fingerprints (see EpochLog.verify)."""
        for name, log in self.logs.items():
            log.verify(f"{owner}:{name}" if owner else name)

    def size_bytes(self) -> int:
        return sum(log.size_bytes() for log in self.logs.values())

    def total_entries(self) -> int:
        return sum(log.total_entries() for log in self.logs.values())


def merge_bundles(bundles: List[LogBundle]) -> LogBundle:
    """Merge determinant bundles retrieved from several downstream holders:
    per (log, epoch), keep the longest prefix (all holders saw consistent
    prefixes because deltas travel FIFO with the data)."""
    merged = LogBundle()
    for bundle in bundles:
        for name, log in bundle.logs.items():
            target = merged.log(name)
            for epoch in log.epochs():
                if log.length(epoch) > target.length(epoch):
                    target._epochs[epoch] = list(log.entries(epoch))
                    target._cum[epoch] = list(log._cum.get(epoch, ()))
                    target._sorted_epochs = None
                    target.version += 1
    return merged


#: One delta slice: (task_id, log_name, epoch, base_index, entries).
DeltaSlice = Tuple[str, str, int, int, List[Determinant]]


def delta_wire_size(slices: List[DeltaSlice]) -> int:
    """Serialized size of a delta: per-slice header + determinant bytes."""
    total = 0
    for _task, _log, _epoch, _base, entries in slices:
        total += 12 + sum(det.wire_size() for det in entries)
    return total


class CausalLogManager:
    """Per-task causal logging state: own bundle, cursors, causal store.

    ``dsd`` is the determinant sharing depth: a dispatched delta carries this
    task's own bundle always, plus the stored bundles of upstream tasks whose
    distance from this task is < dsd (so with dsd=1 only the task's own
    determinants travel one hop; with dsd=2 the direct upstream's bundle is
    forwarded one extra hop, etc.).  ``dsd=0`` disables causal logging
    (Clonos' at-least-once configuration, Section 5.4).
    """

    def __init__(self, task_id: str, num_output_channels: int, dsd: Optional[int]):
        self.task_id = task_id
        self.dsd = dsd  # None = full
        self.bundle = LogBundle(num_output_channels)
        self.current_epoch = 0
        #: causal store: upstream task_id -> (distance, LogBundle)
        self.store: Dict[str, Tuple[int, LogBundle]] = {}
        #: cached _shareable_bundles result; invalidated when the store
        #: gains a task or a distance improves (both rare after warm-up).
        self._share_cache: Optional[List[Tuple[str, int, LogBundle]]] = None
        #: total determinant bytes shipped (for the memory/overhead metrics).
        self.delta_bytes_sent = 0
        #: epochs below this are truncated (checkpoint complete); late deltas
        #: for them are obsolete and ignored.
        self.truncated_before = 0
        #: High-water mark of determinant bytes held (the determinant buffer
        #: pool sizing question of Section 7.5).
        self.peak_bytes_held = 0

    @property
    def enabled(self) -> bool:
        return self.dsd is None or self.dsd > 0

    # -- appending (normal operation) ----------------------------------------

    def append_main(self, determinant: Determinant) -> None:
        self.bundle.log(MAIN).append(self.current_epoch, determinant)

    def append_queue(
        self, channel_index: int, determinant: Determinant, epoch: Optional[int] = None
    ) -> None:
        self.bundle.log(queue_log_name(channel_index)).append(
            self.current_epoch if epoch is None else epoch, determinant
        )

    # -- deltas ------------------------------------------------------------------

    def _shareable_bundles(self) -> List[Tuple[str, int, LogBundle]]:
        """Bundles to piggyback: own (distance 0) + stored ones with
        distance < dsd - 1 ... i.e. whose *receiver* distance stays <= dsd."""
        cached = self._share_cache
        if cached is not None:
            return cached
        bundles: List[Tuple[str, int, LogBundle]] = [(self.task_id, 0, self.bundle)]
        for task_id, (distance, bundle) in self.store.items():
            limit = self.dsd if self.dsd is not None else None
            # The receiver would hold this bundle at distance + 2 hops from
            # its origin... origin -> us is (distance+1) hops; forwarding adds
            # one more. Forward only if the origin's determinants are still
            # within the sharing depth at the receiver.
            if limit is None or distance + 2 <= limit:
                bundles.append((task_id, distance, bundle))
        self._share_cache = bundles
        return bundles

    def delta_for_dispatch(self, channel_index: int) -> Tuple[List[DeltaSlice], int]:
        """Collect everything channel ``channel_index`` has not carried yet."""
        if not self.enabled:
            return [], 0
        slices: List[DeltaSlice] = []
        append = slices.append
        nbytes = 0
        for task_id, _distance, bundle in self._shareable_bundles():
            for log_name, log in bundle.logs.items():
                version = log.version
                chan = log._chan
                state = chan.get(channel_index)
                if state is None:
                    # version starts at 0 and only grows, so -1 forces the
                    # first walk.
                    state = chan[channel_index] = [-1, {}]
                elif state[0] == version:
                    # Unchanged since this channel's last delta: the log
                    # gained no entries, skip the per-epoch cursor walk.
                    continue
                sent_by_epoch = state[1]
                for epoch in log.epochs():
                    entries = log._epochs[epoch]
                    count = len(entries)
                    sent = sent_by_epoch.get(epoch, 0)
                    if sent < count:
                        append((task_id, log_name, epoch, sent, entries[sent:]))
                        sent_by_epoch[epoch] = count
                        nbytes += 12 + log.slice_bytes(epoch, sent, count)
                state[0] = version
        self.delta_bytes_sent += nbytes
        return slices, nbytes

    def merge_delta(self, slices: Iterable[DeltaSlice], sender_task_id: str) -> None:
        """Receiver side: store the piggybacked determinants *before* the
        buffer's records are processed (the always-no-orphans discipline)."""
        store = self.store
        truncated_before = self.truncated_before
        # Slices of one delta arrive grouped by origin task and log (the
        # dispatch loop iterates bundle by bundle, log by log), so caching
        # the last-resolved bundle/log saves the lookups per slice.
        last_task: Optional[str] = None
        last_bundle: Optional[LogBundle] = None
        last_log_name: Optional[str] = None
        last_log: Optional[EpochLog] = None
        for task_id, log_name, epoch, base_index, entries in slices:
            if epoch < truncated_before:
                # The checkpoint-complete RPC raced ahead of this delta: the
                # epoch is already stable, its determinants are obsolete.
                continue
            if task_id != last_task:
                prior = store.get(task_id)
                if prior is None:
                    distance = 0 if task_id == sender_task_id else 1
                    last_bundle = LogBundle()
                    store[task_id] = (distance, last_bundle)
                    self._share_cache = None
                else:
                    # Keep the shortest observed distance.
                    old_distance, last_bundle = prior
                    distance = 0 if task_id == sender_task_id else old_distance
                    if distance < old_distance:
                        store[task_id] = (distance, last_bundle)
                        self._share_cache = None
                last_task = task_id
                last_log_name = None
            if log_name != last_log_name:
                last_log = last_bundle.log(log_name)
                last_log_name = log_name
            # Fully-redundant fast path: several upstream channels forward
            # the same origin slices, so most arrive already held.  This is
            # exactly merge_slice's no-op condition, checked without the
            # call.
            stored = last_log._epochs.get(epoch)
            if stored is not None and base_index + len(entries) <= len(stored):
                continue
            try:
                last_log.merge_slice(epoch, base_index, entries)
            except DeterminantLogError as exc:
                raise DeterminantLogError(
                    f"{self.task_id}: merging delta of task={task_id} "
                    f"log={log_name} from sender={sender_task_id}: {exc}"
                ) from exc

    def store_distance_fixup(self, sender_task_id: str) -> None:
        """Record that ``sender_task_id`` is a direct upstream (distance 0)."""
        if sender_task_id in self.store:
            _d, bundle = self.store[sender_task_id]
            self.store[sender_task_id] = (0, bundle)
            self._share_cache = None

    def _all_logs(self) -> Iterable[EpochLog]:
        """Every log this manager holds: own bundle + causal store."""
        yield from self.bundle.logs.values()
        for _distance, bundle in self.store.values():
            yield from bundle.logs.values()

    # -- recovery support -----------------------------------------------------------

    def stored_bundle_for(self, task_id: str) -> Optional[LogBundle]:
        entry = self.store.get(task_id)
        return entry[1] if entry is not None else None

    def reset_channel_cursors(self, channel_index: int) -> None:
        """A downstream task reconnected after recovery: its causal store may
        be empty, so the next buffers on this channel must re-carry the full
        log.  Receivers merge by index, so over-sending is idempotent."""
        for log in self._all_logs():
            log._chan.pop(channel_index, None)

    # -- epoch lifecycle ---------------------------------------------------------------

    def on_barrier(self, checkpoint_id: int) -> None:
        """Epoch boundary passed the main thread."""
        self.current_epoch = checkpoint_id
        self.note_peak()

    def on_checkpoint_complete(self, checkpoint_id: int) -> int:
        """Truncate everything older than the completed checkpoint."""
        self.note_peak()  # the high-water mark: just before truncation
        self.truncated_before = max(self.truncated_before, checkpoint_id)
        dropped = self.bundle.truncate_before(checkpoint_id)
        for _task_id, (_distance, bundle) in self.store.items():
            dropped += bundle.truncate_before(checkpoint_id)
        for log in self._all_logs():
            for state in log._chan.values():
                sent_by_epoch = state[1]
                for e in [e for e in sent_by_epoch if e < checkpoint_id]:
                    del sent_by_epoch[e]
        return dropped

    def size_bytes(self) -> int:
        """Total determinant bytes held (own + stored)."""
        return self.bundle.size_bytes() + sum(
            bundle.size_bytes() for _d, bundle in self.store.values()
        )

    def bytes_held(self) -> int:
        """Incrementally-tracked variant of :meth:`size_bytes` (O(logs))."""
        total = sum(log.bytes_held for log in self.bundle.logs.values())
        for _distance, bundle in self.store.values():
            total += sum(log.bytes_held for log in bundle.logs.values())
        return total

    def note_peak(self) -> None:
        current = self.bytes_held()
        if current > self.peak_bytes_held:
            self.peak_bytes_held = current
