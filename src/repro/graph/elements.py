"""Stream elements: the things that travel through channels.

Data records, watermarks, and checkpoint barriers all flow *in-band* inside
network buffers, exactly as in Flink; barriers therefore respect FIFO order
per channel, which is what makes aligned (Chandy-Lamport style) checkpoints
correct.
"""

from __future__ import annotations

from typing import Any, Optional


class StreamElement:
    """Base class for everything shipped through a channel."""

    __slots__ = ()

    is_record = False
    is_watermark = False
    is_barrier = False


class StreamRecord(StreamElement):
    """A data record with an (event-time) timestamp and a partitioning key.

    ``created_at`` carries the simulated wall-clock time at which the record
    was first ingested by a source; sinks use it for end-to-end latency.
    """

    __slots__ = ("value", "timestamp", "key", "created_at")

    is_record = True

    def __init__(
        self,
        value: Any,
        timestamp: float = 0.0,
        key: Any = None,
        created_at: Optional[float] = None,
    ):
        self.value = value
        self.timestamp = timestamp
        self.key = key
        self.created_at = created_at

    def with_value(self, value: Any, key: Any = None) -> "StreamRecord":
        """Derive an output record, inheriting time metadata."""
        return StreamRecord(
            value,
            timestamp=self.timestamp,
            key=self.key if key is None else key,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:
        return f"StreamRecord({self.value!r}, ts={self.timestamp}, key={self.key!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamRecord):
            return NotImplemented
        return (
            self.value == other.value
            and self.timestamp == other.timestamp
            and self.key == other.key
        )

    def __hash__(self):
        return hash((repr(self.value), self.timestamp, repr(self.key)))


class Watermark(StreamElement):
    """A low-watermark: a promise that no record with a smaller event time
    will arrive on this stream (Section 4.1, out-of-order processing)."""

    __slots__ = ("timestamp",)

    is_watermark = True

    def __init__(self, timestamp: float):
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return f"Watermark({self.timestamp})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Watermark):
            return NotImplemented
        return self.timestamp == other.timestamp

    def __hash__(self):
        return hash(("wm", self.timestamp))


class CheckpointBarrier(StreamElement):
    """A Chandy-Lamport barrier separating checkpoint epochs.

    A barrier with id *n* closes epoch *n-1*: state snapshotted on its
    passage reflects exactly the records of epochs < n.
    """

    __slots__ = ("checkpoint_id",)

    is_barrier = True

    def __init__(self, checkpoint_id: int):
        self.checkpoint_id = checkpoint_id

    def __repr__(self) -> str:
        return f"CheckpointBarrier({self.checkpoint_id})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckpointBarrier):
            return NotImplemented
        return self.checkpoint_id == other.checkpoint_id

    def __hash__(self):
        return hash(("cb", self.checkpoint_id))


class EndOfStream(StreamElement):
    """Marks source exhaustion for finite test inputs."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "EndOfStream()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EndOfStream)

    def __hash__(self):
        return hash("eos")
