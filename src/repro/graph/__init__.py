"""Dataflow graphs and stream elements."""

from repro.graph.fusion import ChainedOperator, fuse
from repro.graph.elements import (
    CheckpointBarrier,
    EndOfStream,
    StreamElement,
    StreamRecord,
    Watermark,
)

__all__ = [
    "ChainedOperator",
    "CheckpointBarrier",
    "EndOfStream",
    "StreamElement",
    "StreamRecord",
    "Watermark",
    "fuse",
]
