"""Operator chaining (fusion).

The paper evaluates Nexmark with "operator fusion turned on" (Section 7.3):
consecutive operators connected by a forward edge execute inside one task,
eliminating the network hop (and, under Clonos, that hop's in-flight logging
and determinant traffic).

:func:`fuse` rewrites a logical :class:`~repro.graph.logical.JobGraph`,
merging every eligible forward chain into a single node whose factory builds
a :class:`ChainedOperator`.  Eligibility is Flink's: a one-to-one forward
edge, equal parallelism, single-output upstream, single-input downstream.
Sources keep their own node (their driver loop differs), so chains start at
the first post-source operator.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, List, Optional

from repro.errors import JobError
from repro.graph.elements import StreamRecord
from repro.graph.logical import FORWARD, JobGraph, LogicalEdge, LogicalNode
from repro.operators.base import Context, Operator
from repro.state.backend import StateDescriptor
from repro.timing.timers import Timer


class _StageContext:
    """The Context a chained sub-operator sees.

    Differences from the task context it wraps:

    * ``collect`` feeds the *next* stage (or the task's real output for the
      last stage);
    * keyed state names are prefixed per stage, so two chained operators
      using the same descriptor name do not collide;
    * timer namespaces are prefixed per stage for routing back.
    """

    def __init__(self, parent: Context, stage_index: int, is_last: bool):
        self._parent = parent
        self._stage = stage_index
        self._is_last = is_last
        self.staged_output: List[StreamRecord] = []
        self._descriptor_cache = {}

    # Everything not overridden delegates to the task context (current_key,
    # element_timestamp, services, ...).
    def __getattr__(self, name):
        return getattr(self._parent, name)

    def _prefixed(self, descriptor: StateDescriptor) -> StateDescriptor:
        cached = self._descriptor_cache.get(descriptor.name)
        if cached is None:
            cached = copy.copy(descriptor)
            cached.name = f"chain{self._stage}.{descriptor.name}"
            self._descriptor_cache[descriptor.name] = cached
        return cached

    def state(self, descriptor: StateDescriptor):
        return self._parent.state(self._prefixed(descriptor))

    def collect(self, value: Any, timestamp: Optional[float] = None, key: Any = None):
        record = StreamRecord(
            value,
            timestamp=self._parent.element_timestamp if timestamp is None else timestamp,
            key=key,
            created_at=self._parent.element_created_at,
        )
        self.collect_record(record)

    def collect_record(self, record: StreamRecord) -> None:
        if self._is_last:
            self._parent.collect_record(record)
        else:
            self.staged_output.append(record)

    def register_processing_timer(self, fire_time, namespace, payload=None) -> Timer:
        return self._parent.register_processing_timer(
            fire_time, f"chain{self._stage}:{namespace}", payload
        )

    def register_event_timer(self, fire_time, namespace, payload=None) -> Timer:
        return self._parent.register_event_timer(
            fire_time, f"chain{self._stage}:{namespace}", payload
        )


class ChainedOperator(Operator):
    """Several operators executing back-to-back inside one task."""

    def __init__(self, operators: List[Operator]):
        if not operators:
            raise JobError("a chain needs at least one operator")
        self.operators = operators
        self.deterministic = all(op.deterministic for op in operators)
        self._stage_contexts: Optional[List[_StageContext]] = None

    def _contexts(self, ctx: Context) -> List[_StageContext]:
        if self._stage_contexts is None:
            last = len(self.operators) - 1
            self._stage_contexts = [
                _StageContext(ctx, i, i == last) for i in range(len(self.operators))
            ]
        return self._stage_contexts

    def open(self, ctx: Context) -> None:
        for stage_ctx, op in zip(self._contexts(ctx), self.operators):
            op.open(stage_ctx)

    # -- cascading ---------------------------------------------------------------

    def _cascade_from(self, stage: int, records: List[StreamRecord], ctx: Context) -> None:
        """Push ``records`` through stages ``stage``..end."""
        contexts = self._contexts(ctx)
        current = records
        for index in range(stage, len(self.operators)):
            if not current:
                return
            stage_ctx = contexts[index]
            saved = (ctx.current_key, ctx.element_timestamp)
            for record in current:
                # Same contract as the task runtime: the stage sees the
                # record's own key (None for unkeyed records — keyed work
                # needs a hash edge, which is never fused).
                ctx.current_key = record.key
                ctx.backend.set_current_key(record.key)
                ctx.element_timestamp = record.timestamp
                self.operators[index].process(record, stage_ctx)
            ctx.current_key, ctx.element_timestamp = saved
            ctx.backend.set_current_key(ctx.current_key)
            current, stage_ctx.staged_output = stage_ctx.staged_output, []
        # Records leaving the last stage were already handed to the parent.

    def process(self, record: StreamRecord, ctx: Context) -> None:
        self._cascade_from(0, [record], ctx)

    def on_watermark(self, watermark_ts: float, ctx: Context) -> None:
        contexts = self._contexts(ctx)
        for index, op in enumerate(self.operators):
            op.on_watermark(watermark_ts, contexts[index])
            staged, contexts[index].staged_output = contexts[index].staged_output, []
            self._cascade_from(index + 1, staged, ctx)

    def on_timer(self, timer: Timer, ctx: Context) -> None:
        prefix, _, namespace = timer.namespace.partition(":")
        if not prefix.startswith("chain"):
            return
        index = int(prefix[len("chain"):])
        routed = Timer(
            timer.timer_id, timer.key, namespace, timer.fire_time,
            timer.payload, timer.is_event_time,
        )
        stage_ctx = self._contexts(ctx)[index]
        self.operators[index].on_timer(routed, stage_ctx)
        staged, stage_ctx.staged_output = stage_ctx.staged_output, []
        self._cascade_from(index + 1, staged, ctx)

    def on_barrier(self, checkpoint_id: int, ctx: Context) -> None:
        for index, op in enumerate(self.operators):
            op.on_barrier(checkpoint_id, self._contexts(ctx)[index])

    def on_checkpoint_complete(self, checkpoint_id: int, ctx: Context) -> None:
        for index, op in enumerate(self.operators):
            op.on_checkpoint_complete(checkpoint_id, self._contexts(ctx)[index])

    def close(self, ctx: Context) -> None:
        contexts = self._contexts(ctx)
        for index, op in enumerate(self.operators):
            op.close(contexts[index])
            staged, contexts[index].staged_output = contexts[index].staged_output, []
            self._cascade_from(index + 1, staged, ctx)

    # -- state ------------------------------------------------------------------------

    def snapshot(self):
        return [op.snapshot() for op in self.operators]

    def restore(self, state) -> None:
        if state is None:
            return
        for op, sub_state in zip(self.operators, state):
            op.restore(sub_state)


def _fusable(edge: LogicalEdge) -> bool:
    return (
        edge.partitioning == FORWARD
        and not edge.upstream.is_source
        and len(edge.upstream.outputs) == 1
        and len(edge.downstream.inputs) == 1
        and edge.upstream.parallelism == edge.downstream.parallelism
    )


def fuse(graph: JobGraph) -> JobGraph:
    """Return a new JobGraph with eligible forward chains merged."""
    order = graph.topological_order()
    topo_index = {node.node_id: i for i, node in enumerate(order)}
    head_of = {node.node_id: node.node_id for node in order}
    chains = {node.node_id: [node] for node in order}
    fusable_edges = sorted(
        (edge for edge in graph.edges if _fusable(edge)),
        key=lambda edge: topo_index[edge.upstream.node_id],
    )
    for edge in fusable_edges:
        head = head_of[edge.upstream.node_id]
        down_head = head_of[edge.downstream.node_id]
        members = chains.pop(down_head)
        chains[head].extend(members)
        for member in members:
            head_of[member.node_id] = head

    def chain_factory(members: List[LogicalNode]) -> Callable[[], Operator]:
        factories = [member.factory for member in members]
        if len(factories) == 1:
            return factories[0]
        return lambda: ChainedOperator([factory() for factory in factories])

    new_nodes: dict = {}
    nodes: List[LogicalNode] = []
    for node in order:
        if node.node_id not in chains:
            continue  # absorbed into an upstream chain
        members = chains[node.node_id]
        fused = LogicalNode(
            len(nodes),
            "+".join(member.name for member in members),
            chain_factory(members),
            members[0].parallelism,
            is_source=members[0].is_source,
            is_sink=members[-1].is_sink,
        )
        new_nodes[node.node_id] = fused
        nodes.append(fused)

    edges: List[LogicalEdge] = []
    for edge in graph.edges:
        if _fusable(edge):
            continue  # internal to a chain
        upstream = new_nodes[head_of[edge.upstream.node_id]]
        downstream = new_nodes[head_of[edge.downstream.node_id]]
        new_edge = LogicalEdge(
            upstream, downstream, edge.partitioning, edge.key_selector, edge.input_index
        )
        upstream.outputs.append(new_edge)
        downstream.inputs.append(new_edge)
        edges.append(new_edge)

    return JobGraph(f"{graph.name}(fused)", nodes, edges)
