"""Logical job graphs and the fluent builder API.

A :class:`JobGraph` is a DAG of operator nodes connected by edges that carry
a partitioning strategy.  The builder gives the familiar fluent style::

    builder = JobGraphBuilder("wordcount")
    words = builder.source("lines", lambda: MySource(), parallelism=2)
    counts = (words
        .key_by(lambda line: line.word)
        .process("count", lambda: CountOperator()))
    counts.sink("out", lambda: LogSink("out-topic"))
    graph = builder.build()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import JobError

#: Edge partitioning strategies.
FORWARD = "forward"
HASH = "hash"
REBALANCE = "rebalance"
BROADCAST = "broadcast"

_PARTITIONINGS = (FORWARD, HASH, REBALANCE, BROADCAST)


class LogicalNode:
    """One operator in the job graph (replicated ``parallelism`` times)."""

    def __init__(
        self,
        node_id: int,
        name: str,
        factory: Callable[[], Any],
        parallelism: int,
        is_source: bool = False,
        is_sink: bool = False,
    ):
        if parallelism < 1:
            raise JobError(f"node {name!r}: parallelism must be >= 1")
        self.node_id = node_id
        self.name = name
        self.factory = factory
        self.parallelism = parallelism
        self.is_source = is_source
        self.is_sink = is_sink
        self.inputs: List["LogicalEdge"] = []
        self.outputs: List["LogicalEdge"] = []

    def __repr__(self) -> str:
        return f"LogicalNode({self.name!r}, p={self.parallelism})"


class LogicalEdge:
    """A directed stream between two nodes."""

    def __init__(
        self,
        upstream: LogicalNode,
        downstream: LogicalNode,
        partitioning: str,
        key_selector: Optional[Callable[[Any], Any]] = None,
        input_index: int = 0,
    ):
        if partitioning not in _PARTITIONINGS:
            raise JobError(f"unknown partitioning {partitioning!r}")
        if partitioning == HASH and key_selector is None:
            raise JobError("hash partitioning requires a key selector")
        if partitioning == FORWARD and upstream.parallelism != downstream.parallelism:
            raise JobError(
                f"forward edge {upstream.name}->{downstream.name} requires equal "
                f"parallelism ({upstream.parallelism} != {downstream.parallelism})"
            )
        self.upstream = upstream
        self.downstream = downstream
        self.partitioning = partitioning
        self.key_selector = key_selector
        #: Which logical input of the downstream operator this edge feeds
        #: (joins have two).
        self.input_index = input_index

    def __repr__(self) -> str:
        return (
            f"LogicalEdge({self.upstream.name}->{self.downstream.name}, "
            f"{self.partitioning})"
        )


class JobGraph:
    """A validated logical dataflow graph."""

    def __init__(self, name: str, nodes: List[LogicalNode], edges: List[LogicalEdge]):
        self.name = name
        self.nodes = nodes
        self.edges = edges
        self._validate()

    def _validate(self) -> None:
        if not any(n.is_source for n in self.nodes):
            raise JobError("job graph has no source")
        for node in self.nodes:
            if not node.is_source and not node.inputs:
                raise JobError(f"non-source node {node.name!r} has no inputs")
            if node.is_source and node.inputs:
                raise JobError(f"source node {node.name!r} has inputs")
        self.topological_order()  # raises on cycles

    def node_by_name(self, name: str) -> LogicalNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise JobError(f"no node named {name!r}")

    def topological_order(self) -> List[LogicalNode]:
        in_degree = {node.node_id: len(node.inputs) for node in self.nodes}
        by_id = {node.node_id: node for node in self.nodes}
        frontier = [n for n in self.nodes if in_degree[n.node_id] == 0]
        order: List[LogicalNode] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for edge in node.outputs:
                in_degree[edge.downstream.node_id] -= 1
                if in_degree[edge.downstream.node_id] == 0:
                    frontier.append(by_id[edge.downstream.node_id])
        if len(order) != len(self.nodes):
            raise JobError("job graph contains a cycle")
        return order

    def depth_of(self, node: LogicalNode) -> int:
        """Longest path from any source (sources have depth 0)."""
        depths: Dict[int, int] = {}
        for n in self.topological_order():
            if n.is_source:
                depths[n.node_id] = 0
            else:
                depths[n.node_id] = 1 + max(
                    depths[e.upstream.node_id] for e in n.inputs
                )
        return depths[node.node_id]

    @property
    def depth(self) -> int:
        """Maximum graph depth D (Section 5.3)."""
        return max(self.depth_of(n) for n in self.nodes)

    @property
    def total_tasks(self) -> int:
        return sum(n.parallelism for n in self.nodes)

    def udf_callables(self):
        """Yield ``(label, callable)`` for every user-supplied callable in the
        graph: node factories (which close over the operator UDFs) and edge
        key selectors.  This is the root set the NDLint engine expands."""
        for node in self.nodes:
            yield f"node {node.name!r} factory", node.factory
        for edge in self.edges:
            if edge.key_selector is not None:
                yield (
                    f"edge {edge.upstream.name}->{edge.downstream.name} key_selector",
                    edge.key_selector,
                )

    def __repr__(self) -> str:
        return f"JobGraph({self.name!r}, nodes={len(self.nodes)}, D={self.depth})"


class DataStream:
    """Fluent handle over a node's output during graph construction."""

    def __init__(self, builder: "JobGraphBuilder", node: LogicalNode):
        self._builder = builder
        self._node = node
        self._partitioning = FORWARD
        self._key_selector: Optional[Callable[[Any], Any]] = None

    # -- partitioning modifiers -------------------------------------------------

    def key_by(self, key_selector: Callable[[Any], Any]) -> "DataStream":
        stream = DataStream(self._builder, self._node)
        stream._partitioning = HASH
        stream._key_selector = key_selector
        return stream

    def rebalance(self) -> "DataStream":
        stream = DataStream(self._builder, self._node)
        stream._partitioning = REBALANCE
        return stream

    def broadcast(self) -> "DataStream":
        stream = DataStream(self._builder, self._node)
        stream._partitioning = BROADCAST
        return stream

    # -- operator attachment ------------------------------------------------------

    def process(
        self,
        name: str,
        factory: Callable[[], Any],
        parallelism: Optional[int] = None,
    ) -> "DataStream":
        """Attach an arbitrary operator; returns its output stream."""
        node = self._builder._add_node(name, factory, parallelism or self._node.parallelism)
        self._builder._add_edge(self._node, node, self._partitioning, self._key_selector)
        return DataStream(self._builder, node)

    def sink(
        self,
        name: str,
        factory: Callable[[], Any],
        parallelism: Optional[int] = None,
    ) -> LogicalNode:
        node = self._builder._add_node(
            name, factory, parallelism or self._node.parallelism, is_sink=True
        )
        self._builder._add_edge(self._node, node, self._partitioning, self._key_selector)
        return node

    @property
    def node(self) -> LogicalNode:
        return self._node


class JobGraphBuilder:
    """Accumulates nodes/edges and produces a validated :class:`JobGraph`."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: List[LogicalNode] = []
        self._edges: List[LogicalEdge] = []
        self._names: set = set()

    def source(
        self, name: str, factory: Callable[[], Any], parallelism: int = 1
    ) -> DataStream:
        node = self._add_node(name, factory, parallelism, is_source=True)
        return DataStream(self, node)

    def connect(
        self,
        left: DataStream,
        right: DataStream,
        name: str,
        factory: Callable[[], Any],
        parallelism: Optional[int] = None,
    ) -> DataStream:
        """Attach a two-input operator fed by ``left`` (input 0) and
        ``right`` (input 1)."""
        node = self._add_node(name, factory, parallelism or left._node.parallelism)
        self._add_edge(left._node, node, left._partitioning, left._key_selector, 0)
        self._add_edge(right._node, node, right._partitioning, right._key_selector, 1)
        return DataStream(self, node)

    def _add_node(
        self,
        name: str,
        factory: Callable[[], Any],
        parallelism: int,
        is_source: bool = False,
        is_sink: bool = False,
    ) -> LogicalNode:
        if name in self._names:
            raise JobError(f"duplicate node name {name!r}")
        self._names.add(name)
        node = LogicalNode(len(self._nodes), name, factory, parallelism, is_source, is_sink)
        self._nodes.append(node)
        return node

    def _add_edge(
        self,
        upstream: LogicalNode,
        downstream: LogicalNode,
        partitioning: str,
        key_selector: Optional[Callable[[Any], Any]],
        input_index: int = 0,
    ) -> LogicalEdge:
        edge = LogicalEdge(upstream, downstream, partitioning, key_selector, input_index)
        upstream.outputs.append(edge)
        downstream.inputs.append(edge)
        self._edges.append(edge)
        return edge

    def build(self) -> JobGraph:
        return JobGraph(self.name, list(self._nodes), list(self._edges))
