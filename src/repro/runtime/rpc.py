"""Control plane: RPC-delivered control messages.

Tasks own a :class:`ControlQueue`; the job manager (and peer tasks, for
replay/determinant requests) send messages that arrive after the RPC
latency.  Handling a control message at a particular point in the record
stream is itself nondeterministic (Section 4.1, Checkpoints & Received
RPCs) — the task-side handlers log the appropriate determinants.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, NamedTuple

from repro.config import CostModel
from repro.sim.core import Environment
from repro.sim.queues import Signal


class ControlMessage(NamedTuple):
    kind: str
    payload: Any
    sender: str


class ControlQueue:
    """A task's inbound control mailbox."""

    def __init__(self, env: Environment, cost: CostModel, owner: str):
        self.env = env
        self.cost = cost
        self.owner = owner
        self.signal = Signal(env)
        self._messages: Deque[ControlMessage] = deque()
        self.closed = False

    def send(self, kind: str, payload: Any = None, sender: str = "jobmanager",
             immediate: bool = False) -> None:
        """Deliver a message after the RPC latency (or immediately for
        intra-process notifications)."""
        message = ControlMessage(kind, payload, sender)
        if immediate:
            self._deliver(message)
        else:
            self.env.schedule_callback(
                self.cost.rpc_latency, lambda m=message: self._deliver(m)
            )

    def _deliver(self, message: ControlMessage) -> None:
        if self.closed:
            return  # RPCs to dead tasks vanish
        self._messages.append(message)
        self.signal.pulse()

    def poll(self):
        return self._messages.popleft() if self._messages else None

    def __len__(self) -> int:
        return len(self._messages)

    def close(self) -> None:
        self.closed = True
        self._messages.clear()

    def reopen(self) -> None:
        self.closed = False
