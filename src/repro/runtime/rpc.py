"""Control plane: RPC-delivered control messages.

Tasks own a :class:`ControlQueue`; the job manager (and peer tasks, for
replay/determinant requests) send messages that arrive after the RPC
latency.  Handling a control message at a particular point in the record
stream is itself nondeterministic (Section 4.1, Checkpoints & Received
RPCs) — the task-side handlers log the appropriate determinants.

Plain sends are fire-and-forget (a lost RPC is simply gone — the queue
counts the loss).  Recovery-critical messages use ``send(reliable=True)``:
the message carries an id, delivery is acked, and an unacked send is resent
on a jittered exponential backoff; the receiver suppresses duplicate ids,
so the handler side stays idempotent.  This is what lets recovery make
progress over a lossy control plane instead of wedging.
"""

from __future__ import annotations

import random
from typing import Any, Callable, NamedTuple, Optional

from collections import deque
from typing import Deque

from repro.config import CostModel, RetryPolicy
from repro.sim.core import Environment
from repro.sim.queues import Signal

#: Fallback resend schedule when the sender has no JobConfig in reach.
_DEFAULT_RPC_RETRY = RetryPolicy(max_attempts=8, base_delay=0.02,
                                 multiplier=2.0, max_delay=0.5)


class ControlMessage(NamedTuple):
    kind: str
    payload: Any
    sender: str
    msg_id: Optional[str] = None


class ControlQueue:
    """A task's inbound control mailbox."""

    def __init__(self, env: Environment, cost: CostModel, owner: str, jm=None):
        self.env = env
        self.cost = cost
        self.owner = owner
        self.jm = jm
        self.signal = Signal(env)
        self._messages: Deque[ControlMessage] = deque()
        self.closed = False
        # -- loss accounting (chaos runs assert against these) ---------------
        self.delivered = 0
        #: Messages that evaporated because the queue was closed (dead task).
        self.drops_closed = 0
        #: Messages lost to injected control-plane chaos.
        self.drops_lost = 0
        #: Resends whose id had already been delivered (at-least-once working
        #: as designed: the duplicate is suppressed, the ack repeated).
        self.duplicates_suppressed = 0
        self._seen_ids: set = set()
        self._send_counter = 0
        self._rng: Optional[random.Random] = None

    # -- chaos hook -----------------------------------------------------------

    def _chaos(self):
        """The job-wide control-plane chaos model, when one is installed."""
        return getattr(self.jm, "control_chaos", None) if self.jm is not None else None

    def _note_drop(self, kind: str, reason: str) -> None:
        if self.jm is not None and hasattr(self.jm, "note_control_drop"):
            self.jm.note_control_drop(self.owner, kind, reason)

    # -- sending --------------------------------------------------------------

    def send(
        self,
        kind: str,
        payload: Any = None,
        sender: str = "jobmanager",
        immediate: bool = False,
        reliable: bool = False,
        retry: Optional[RetryPolicy] = None,
        on_retry: Optional[Callable[[int], None]] = None,
        on_give_up: Optional[Callable[[int], None]] = None,
    ) -> Optional[str]:
        """Deliver a message after the RPC latency (or immediately for
        intra-process notifications).

        ``reliable=True`` upgrades the send to at-least-once: the message
        gets an id, delivery is acked after another RPC latency, and a
        missing ack triggers resends per ``retry`` (``on_retry(n)`` fires
        before resend *n*; ``on_give_up(attempts)`` when the policy is
        exhausted).  Returns the message id, or None for plain sends.
        """
        if reliable:
            return self._send_reliable(kind, payload, sender, retry,
                                       on_retry, on_give_up)
        message = ControlMessage(kind, payload, sender)
        if immediate:
            self._deliver(message)
        else:
            self.env.schedule_callback(
                self.cost.rpc_latency, lambda m=message: self._deliver(m)
            )
        return None

    def _send_reliable(self, kind, payload, sender, retry, on_retry, on_give_up):
        self._send_counter += 1
        msg_id = f"{sender}->{self.owner}#{self._send_counter}"
        policy = retry or _DEFAULT_RPC_RETRY
        state = {"acked": False, "attempts": 0}
        if self._rng is None:
            # Deterministic jitter: per-queue stream derived from the job
            # seed when reachable, else a fixed seed (unit-test queues).
            streams = getattr(self.jm, "streams", None)
            self._rng = (streams.stream(f"rpc-retry:{self.owner}")
                         if streams is not None else random.Random(0))

        def ack() -> None:
            state["acked"] = True

        def attempt() -> None:
            if state["acked"]:
                return
            state["attempts"] += 1
            message = ControlMessage(kind, payload, sender, msg_id)
            self.env.schedule_callback(
                self.cost.rpc_latency, lambda m=message: self._deliver(m, ack)
            )
            wait = self.cost.rpc_ack_timeout + policy.delay(
                state["attempts"] - 1, self._rng
            )
            self.env.schedule_callback(wait, check)

        def check() -> None:
            if state["acked"]:
                return
            if state["attempts"] >= policy.max_attempts:
                if on_give_up is not None:
                    on_give_up(state["attempts"])
                return
            if on_retry is not None:
                on_retry(state["attempts"])
            attempt()

        attempt()
        return msg_id

    # -- delivery -------------------------------------------------------------

    def _deliver(self, message: ControlMessage,
                 ack: Optional[Callable[[], None]] = None) -> None:
        if self.closed:
            # RPCs to dead tasks vanish — but no longer silently: the queue
            # and the job-wide ledger both record the loss.
            self.drops_closed += 1
            self._note_drop(message.kind, "closed")
            return
        chaos = self._chaos()
        if chaos is not None and chaos.should_drop(
            self.env.now, message.sender, self.owner
        ):
            self.drops_lost += 1
            self._note_drop(message.kind, "lost")
            return
        if message.msg_id is not None and message.msg_id in self._seen_ids:
            self.duplicates_suppressed += 1
        else:
            if message.msg_id is not None:
                self._seen_ids.add(message.msg_id)
            self._messages.append(message)
            self.delivered += 1
            self.signal.pulse()
            if chaos is not None and chaos.should_duplicate(
                self.env.now, message.sender, self.owner
            ):
                # Chaos-injected duplicate: id-less messages genuinely arrive
                # twice (handlers must cope); id-carrying ones get suppressed
                # on the second delivery above.
                self.env.schedule_callback(
                    self.cost.rpc_latency, lambda m=message: self._deliver(m, ack)
                )
        if ack is not None:
            # Duplicates are re-acked: the first ack may have been the loss.
            def send_ack() -> None:
                live_chaos = self._chaos()
                if live_chaos is not None and live_chaos.should_drop(
                    self.env.now, message.sender, self.owner
                ):
                    self.drops_lost += 1
                    self._note_drop(message.kind, "ack-lost")
                    return
                ack()

            self.env.schedule_callback(self.cost.rpc_latency, send_ack)

    def poll(self):
        return self._messages.popleft() if self._messages else None

    def __len__(self) -> int:
        return len(self._messages)

    def close(self) -> None:
        self.closed = True
        self._messages.clear()

    def reopen(self) -> None:
        self.closed = False
