"""The stream task: a Flink-style task executor on the simulation kernel.

One :class:`StreamTask` hosts one operator subtask.  Its mailbox loop
multiplexes control messages (RPCs), due processing timers, and input
buffers — the three asynchronous inputs whose interleaving is the
nondeterminism Clonos logs (Section 4).

The same loop runs both *normal operation* and *causal recovery*: when the
attached :class:`~repro.core.recovery.RecoveryManager` is active, control
flow is dictated by the determinant log (which channel to consume, when
timers fire, where the source cut epochs) instead of by arrival order and
the wall clock, and the causal log is rebuilt as replay proceeds.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, NamedTuple, Optional

from repro.analysis.invariants import SANITIZER
from repro.config import FaultToleranceMode, JobConfig
from repro.core.causal_log import CausalLogManager
from repro.core.determinants import (
    BarrierInjectDeterminant,
    BufferSizeDeterminant,
    OrderDeterminant,
    TimerFiredDeterminant,
    WatermarkEmitDeterminant,
)
from repro.core.inflight_log import InFlightLog
from repro.core.recovery import RecoveryManager
from repro.errors import (
    DeterminantLogError,
    ExternalSystemError,
    IntegrityError,
    PoisonPillError,
    RecoveryError,
)
from repro.graph.elements import (
    CheckpointBarrier,
    EndOfStream,
    StreamRecord,
    Watermark,
)
from repro.net.buffer import NetworkBuffer
from repro.net.gate import InputGate
from repro.net.writer import CausalOutputContext, OutputChannel, RecordWriter
from repro.operators.base import Context, Operator, Services
from repro.runtime.rpc import ControlQueue
from repro.sim.core import Environment, Interrupt
from repro.state.backend import HashMapStateBackend
from repro.state.snapshot import TaskSnapshot
from repro.timing.timers import Timer, TimerService
from repro.timing.watermarks import WatermarkTracker


class TaskStatus(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    RECOVERING = "recovering"
    FAILED = "failed"
    FINISHED = "finished"


class InputInfo(NamedTuple):
    """Metadata of one flattened input channel."""

    flat_index: int
    input_index: int  # which logical input of the operator
    upstream_task: str  # e.g. "map[2]"
    link: Any  # NetworkLink


class OutputEdgeInfo(NamedTuple):
    """One output edge: its writer plus routing metadata."""

    writer: RecordWriter
    key_selector: Optional[Callable[[Any], Any]]
    downstream_tasks: List[str]  # per channel position


class _TaskCausalContext(CausalOutputContext):
    """Adapter feeding the writer's buffer-cut events into the causal log."""

    def __init__(self, causal: CausalLogManager):
        self.causal = causal

    def on_buffer_cut(self, channel_index, seq, num_elements, size_bytes, reason, epoch):
        self.causal.append_queue(
            channel_index,
            BufferSizeDeterminant(seq, num_elements, size_bytes),
            epoch=epoch,
        )

    def delta_for_dispatch(self, channel_index):
        return self.causal.delta_for_dispatch(channel_index)


class StreamTask:
    """One running (or standby-activated) subtask."""

    SOURCE_BATCH = 64

    def __init__(
        self,
        env: Environment,
        config: JobConfig,
        name: str,
        vertex_name: str,
        subtask_index: int,
        num_subtasks: int,
        operator: Operator,
        jobmanager,
        is_source: bool,
        is_sink: bool,
    ):
        self.env = env
        self.config = config
        self.cost = config.cost
        self.name = name
        self.vertex_name = vertex_name
        self.subtask_index = subtask_index
        self.num_subtasks = num_subtasks
        self.operator = operator
        self.jm = jobmanager
        self.is_source = is_source
        self.is_sink = is_sink

        self.backend = HashMapStateBackend()
        self.timers = TimerService(env)
        self.control = ControlQueue(env, self.cost, name, jm=jobmanager)
        self.recovery = RecoveryManager(
            name,
            trace=getattr(jobmanager, "trace", None),
            clock=(lambda: env.now),
        )
        self.causal: Optional[CausalLogManager] = None
        self.inflight: Optional[InFlightLog] = None
        self.services: Optional[Services] = None

        self.gate: Optional[InputGate] = None
        self.input_infos: List[InputInfo] = []
        self.out_edges: List[OutputEdgeInfo] = []

        self.epoch = 0
        self.offset_in_epoch = 0
        self.records_processed = 0
        self.status = TaskStatus.CREATED

        self._cpu_debt = 0.0
        #: Straggler-node multiplier (chaos ``compute_slowdown``); 1.0 keeps
        #: ``_pay`` on the exact historical arithmetic.
        self.compute_slowdown = 1.0
        #: True only while the poison registry has pills/arms for this task
        #: name — the per-record registry consult is skipped entirely
        #: otherwise (hot-path passivity).
        self._poison_active = False
        self._aligning: Optional[int] = None
        self._barriers_received: set = set()
        #: Checkpoint ids whose alignment was cancelled because an upstream
        #: died mid-alignment (the coordinator aborted the cut); their
        #: replayed barriers must be ignored, not re-aligned on.
        self._cancelled_alignments: set = set()
        self._channels_done: set = set()
        self._last_wm_check = 0.0
        self._acked_checkpoints: set = set()
        self._main_proc = None
        self._flusher_proc = None
        self._service_procs: list = []
        #: Live replay server per output channel; a newer replay_request for
        #: the same channel supersedes (kills) the older server.
        self._active_replays: Dict[int, Any] = {}
        self.ctx: Optional[Context] = None
        self.node_id: Optional[int] = None

        #: SEEP-baseline receiver-side deduplication (Table 1): count records
        #: per (channel, epoch); on upstream replay, drop the first N
        #: re-received records.  Correct iff upstream regeneration is
        #: deterministic — which is exactly the assumption Clonos removes.
        self.seep_dedup = False
        self._seep_counts: Dict[int, Dict[int, int]] = {}
        self._seep_channel_epoch: Dict[int, int] = {}
        self._seep_drop: Dict[int, int] = {}
        self.seep_records_dropped = 0

        #: Output buffer pool (set by deployment when the task has outputs);
        #: the sanitizer's leak accounting reads it at end of job.
        self.out_pool = None
        #: Exactly-once modes must never re-deliver a consumed sequence
        #: number; at-least-once replay (SEEP/divergent) legitimately does.
        self._fifo_strict = config.mode in (
            FaultToleranceMode.NONE,
            FaultToleranceMode.GLOBAL_ROLLBACK,
            FaultToleranceMode.CLONOS,
        )

    # -- wiring (done by deployment) ------------------------------------------------

    def attach_inputs(self, gate: InputGate, infos: List[InputInfo]) -> None:
        self.gate = gate
        self.input_infos = infos
        self._wm_tracker = WatermarkTracker(max(1, len(infos)))

    def attach_outputs(self, out_edges: List[OutputEdgeInfo]) -> None:
        self.out_edges = out_edges

    def attach_ft(
        self,
        services: Services,
        causal: Optional[CausalLogManager],
        inflight: Optional[InFlightLog],
    ) -> None:
        self.services = services
        self.causal = causal
        self.inflight = inflight

    def make_context(self) -> Context:
        self.ctx = Context(
            self.name,
            self.subtask_index,
            self.num_subtasks,
            self.backend,
            self.timers,
            self.services,
            env=self.env,
        )
        return self.ctx

    def causal_output_context(self) -> Optional[CausalOutputContext]:
        return _TaskCausalContext(self.causal) if self.causal is not None else None

    @property
    def all_output_channels(self) -> List[OutputChannel]:
        return [ch for edge in self.out_edges for ch in edge.writer.channels]

    def output_channel_by_flat_index(self, flat_index: int) -> OutputChannel:
        for channel in self.all_output_channels:
            if channel.index == flat_index:
                return channel
        raise RecoveryError(f"{self.name}: no output channel {flat_index}")

    def _set_status(self, status: "TaskStatus") -> None:
        """All status transitions go through here so the job manager can run
        status-subscription callbacks (deferred failure injections etc.)."""
        self.status = status
        notify = getattr(self.jm, "task_status_changed", None)
        if notify is not None:
            notify(self)

    # -- lifecycle ----------------------------------------------------------------------

    def start(
        self,
        snapshot: Optional[TaskSnapshot] = None,
        recovery_bundle=None,
        replay_from_epoch: int = 0,
    ) -> None:
        """Begin execution, optionally restoring state / entering recovery."""
        if SANITIZER.enabled:
            SANITIZER.on_task_start(self.name)
        if snapshot is not None:
            self._restore(snapshot)
        if self.services is not None and hasattr(self.services, "reseed_for_epoch"):
            if recovery_bundle is None:
                self.services.reseed_for_epoch(self.epoch)
        self.operator.open(self.ctx)
        if recovery_bundle is not None:
            # Step 4 of the recovery protocol starts here: replay logged
            # in-flight records under the loaded order determinants.
            self.jm.trace.emit(
                self.env.now, "phase-mark", self.name, phase="inflight-replay"
            )
            self.recovery.load(recovery_bundle, replay_from_epoch)
            self._prepare_replay()
            if self.status is not TaskStatus.RUNNING:
                self._set_status(TaskStatus.RECOVERING)
        else:
            self.timers.arm_parked()
            self._set_status(TaskStatus.RUNNING)
        self._last_wm_check = self.env.now
        loop = self._source_loop() if self.is_source else self._data_loop()
        self._main_proc = self.env.process(loop, name=f"task:{self.name}")
        if self.out_edges:
            self._flusher_proc = self.env.process(
                self._flusher(), name=f"flusher:{self.name}"
            )

    def _restore(self, snapshot: TaskSnapshot) -> None:
        self.backend.restore(snapshot.keyed_state)
        self.operator.restore(snapshot.operator_state)
        self.timers.restore(snapshot.timer_state)
        if snapshot.watermark_state is not None and self.input_infos:
            self._wm_tracker.restore(snapshot.watermark_state)
            self.ctx.current_watermark = self._wm_tracker.current
        for edge, state in zip(self.out_edges, snapshot.network_state["edges"]):
            edge.writer.restore_state(state)
        # The writer state was imaged before the barrier broadcast bumped the
        # channel epochs, so the stored epoch is the one the checkpoint
        # closes.  A restored task resumes in the epoch the checkpoint opens:
        # stamp regenerated buffers accordingly, or a downstream replay
        # request with from_epoch=checkpoint_id would skip them.
        for channel in self.all_output_channels:
            channel.epoch = snapshot.checkpoint_id
        self.epoch = snapshot.checkpoint_id
        self.offset_in_epoch = 0
        if self.causal is not None:
            self.causal.current_epoch = snapshot.checkpoint_id

    def _prepare_replay(self) -> None:
        """Step 6 prep: pre-load forced buffer cuts so the network threads
        rebuild identical buffers (Section 5.2), and re-anchor each writer's
        sequence numbering on the logged cuts.

        The checkpoint images ``channel.seq`` *before* the epoch-closing
        barrier goes out.  When that barrier opened a fresh buffer, the
        buffer consumed a sequence number the image never saw: regenerated
        buffers would come out numbered one low, and after the replayed cuts
        were deduplicated the first buffer of *fresh* records would collide
        with ``suppress_until_seq`` and be silently dropped.  The
        output-queue log is authoritative for where replay resumes; with no
        logged cuts, the only delivered-but-unlogged buffer is the barrier
        one (its cut belongs to the closed epoch), so its number is skipped.
        """
        if self.services is not None and hasattr(self.services, "replay_reseed"):
            if self.recovery.has_value("rng"):
                self.services.replay_reseed()
        gap_channel = None
        for channel in self.all_output_channels:
            cuts = self.recovery.forced_cuts_for_channel(channel.index)
            channel.forced_cuts.clear()
            channel.forced_cuts.extend(cuts)
            first = self.recovery.first_replayed_seq(channel.index)
            if first is not None:
                channel.seq = first
                next_fresh_seq = first + len(cuts)
            else:
                if channel.seq == channel.suppress_until_seq:
                    channel.seq += 1
                next_fresh_seq = channel.seq
            if next_fresh_seq <= channel.suppress_until_seq and gap_channel is None:
                gap_channel = channel.index
        if gap_channel is not None:
            # The receiver holds delivered buffers beyond anything the
            # determinant log can regenerate, so exact sender-side dedup is
            # impossible for that window.  Never guess silently — announce
            # and regenerate from the sources instead.
            self.jm.coordinator.degrade(
                self.name, f"replay-horizon-gap:ch{gap_channel}"
            )
        if not self.recovery.active:
            self._finish_recovery()

    def fail(self) -> None:
        """Failure injection: the task process dies instantly and silently."""
        self._set_status(TaskStatus.FAILED)
        for proc in (self._main_proc, self._flusher_proc, *self._service_procs):
            if proc is not None and proc.is_alive:
                proc.kill()
        self.control.close()
        if self.gate is not None:
            for info in self.input_infos:
                info.link.detach_receiver()
            self.gate.close()
        for edge in self.out_edges:
            for channel in edge.writer.channels:
                channel.link.reset()

    # -- cpu accounting ----------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        self._cpu_debt += seconds

    def _pay(self):
        if self._cpu_debt > 0:
            debt, self._cpu_debt = self._cpu_debt, 0.0
            if self.compute_slowdown != 1.0:
                debt *= self.compute_slowdown
            yield self.env.timeout(debt)

    # -- main loops --------------------------------------------------------------------------

    def _wait_for_work(self):
        waits = [self.control.signal.wait(), self.timers.due_signal.wait()]
        if self.gate is not None:
            waits.append(self.gate.arrival_signal.wait())
        return self.env.any_of(waits)

    def _data_loop(self):
        try:
            while True:
                message = self.control.poll()
                if message is not None:
                    yield from self._handle_control(message)
                    continue
                if self.recovery.active:
                    yield from self._data_replay_step()
                    continue
                if self.timers.has_due():
                    yield from self._fire_timer(self.timers.pop_due())
                    continue
                item = self.gate.poll_buffer()
                if item is not None:
                    yield from self._process_buffer(item[0], item[1])
                    yield from self._pay()
                    if len(self._channels_done) == len(self.input_infos):
                        yield from self._finish()
                        return
                    continue
                yield self._wait_for_work()
        except Interrupt:
            return
        except PoisonPillError:
            # A pill is an injected *fault*, not a job bug: this incarnation
            # dies like a task_kill and the normal recovery path replays it
            # back to the same record, where the registry rules again.
            name = self.name
            jm = self.jm
            jm.recovery_events.append((self.env.now, "poison-crash", name))
            jm.trace.emit(self.env.now, "poison-crash", name)
            self.env.schedule_callback(
                0.0, lambda: jm.kill_task(name, force=True)
            )
            return
        except ExternalSystemError as exc:
            # An external system refused an operation mid-stream (broker
            # outage/brownout reaching a sink append).  Production runtimes
            # fail the task, not the job: recovery replays the sink's input
            # byte-identically and the Section 5.5 skip counts dedupe what
            # already landed, so once the external system returns the output
            # is still exactly-once.
            name = self.name
            jm = self.jm
            jm.recovery_events.append((self.env.now, "external-crash", name))
            jm.trace.emit(self.env.now, "external-crash", name, error=str(exc))
            self.env.schedule_callback(
                0.0, lambda: jm.kill_task(name, force=True)
            )
            return
        except Exception as exc:  # noqa: BLE001 — surface bugs to the JM
            self.jm.task_crashed(self, exc)
            raise

    def _source_loop(self):
        try:
            while True:
                message = self.control.poll()
                if message is not None:
                    yield from self._handle_control(message)
                    continue
                if self.recovery.active:
                    yield from self._source_replay_step()
                    continue
                if self.timers.has_due():
                    yield from self._fire_timer(self.timers.pop_due())
                    continue
                records, next_arrival = self.operator.poll(self.ctx, self.SOURCE_BATCH)
                if records:
                    record_cpu_cost = self.cost.record_cpu_cost
                    for record in records:
                        self.offset_in_epoch += 1
                        self.records_processed += 1
                        self._cpu_debt += record_cpu_cost
                        tail = self._emit_nowait(record)
                        if tail is not None:
                            yield from tail
                    yield from self._maybe_emit_watermark()
                    yield from self._pay()
                    continue
                if next_arrival is None:
                    yield from self._finish_source()
                    return
                delay = max(next_arrival - self.env.now, 1e-4)
                yield self.env.any_of(
                    [
                        self.env.timeout(delay),
                        self.control.signal.wait(),
                        self.timers.due_signal.wait(),
                    ]
                )
        except Interrupt:
            return
        except Exception as exc:  # noqa: BLE001 — surface bugs to the JM
            self.jm.task_crashed(self, exc)
            raise

    def _flusher(self):
        """The output-flusher thread: time-based (nondeterministic) cuts."""
        try:
            while True:
                yield self.env.timeout(self.cost.flush_interval)
                if self.recovery.active:
                    continue
                for edge in self.out_edges:
                    for channel in edge.writer.channels:
                        flush_gen = channel.try_flush_from_timer()
                        if flush_gen is not None:
                            yield from flush_gen
        except Interrupt:
            return

    # -- normal-path processing ------------------------------------------------------------

    def _process_buffer(self, channel_index: int, buffer: NetworkBuffer):
        if SANITIZER.enabled:
            SANITIZER.on_buffer(
                self.name, channel_index, buffer.seq, strict=self._fifo_strict
            )
        self.charge(
            self.cost.buffer_overhead_cost
            + self.cost.serialize_time(buffer.size_bytes)
        )
        if self.causal is not None:
            if buffer.delta:
                # Store the piggybacked determinants BEFORE processing the
                # records that depend on them (always-no-orphans, Section 5.3).
                try:
                    self.causal.merge_delta(
                        buffer.delta, self.input_infos[channel_index].upstream_task
                    )
                except DeterminantLogError:
                    # A compound incident (e.g. a zone outage) can rebuild
                    # both ends of a channel into disagreeing log positions.
                    # Under fallback_to_global that is an announced global
                    # rollback, not a job crash; without it, surface the bug.
                    if (
                        self.config.mode is not FaultToleranceMode.CLONOS
                        or not self.config.clonos.fallback_to_global
                    ):
                        raise
                    self.jm.recovery_events.append(
                        (self.env.now, "determinant-delta-gap", self.name)
                    )
                    self.jm.coordinator.degrade(self.name, "determinant-delta-gap")
                    if buffer.recycle_on_consume:
                        buffer.recycle()
                    return
                entries = 0
                for s in buffer.delta:
                    entries += len(s[4])
                self.charge(
                    self.cost.serialize_time(buffer.delta_bytes)
                    + entries * self.cost.determinant_cpu_cost
                )
            self.causal.append_main(OrderDeterminant(channel_index, buffer.seq))
            self.charge(self.cost.determinant_cpu_cost)
        # Per-record fast path: _process_record is inlined and emission uses
        # the non-blocking writer path, so a record that does not cut a
        # buffer costs zero generator frames and zero kernel interactions.
        ctx = self.ctx
        input_index = self.input_infos[channel_index].input_index
        set_current_key = self.backend.set_current_key
        operator_process = self.operator.process
        record_cpu_cost = self.cost.record_cpu_cost
        for element in buffer.elements:
            if element.is_record:
                if self.seep_dedup:
                    epoch = self._seep_channel_epoch.get(channel_index, 0)
                    counts = self._seep_counts.setdefault(channel_index, {})
                    counts[epoch] = counts.get(epoch, 0) + 1
                    if self._seep_drop.get(channel_index, 0) > 0:
                        self._seep_drop[channel_index] -= 1
                        self.seep_records_dropped += 1
                        continue
                if self._poison_active:
                    # Consulted BEFORE any counter or operator touch: a
                    # "crash" verdict must leave no artifact containing this
                    # record, and a skip must be byte-identical on every
                    # incarnation that replays past it.
                    verdict = self.jm.poison.on_record(self.name, element.value)
                    if verdict != "pass":
                        if verdict == "crash":
                            raise PoisonPillError(
                                self.name, self.jm.poison.origin_of(element.value)
                            )
                        if verdict == "quarantine":
                            self.jm.note_poison_quarantine(
                                self.name, self.jm.poison.origin_of(element.value)
                            )
                        continue
                self.offset_in_epoch += 1
                self.records_processed += 1
                self._cpu_debt += record_cpu_cost
                ctx.current_key = element.key
                ctx.element_timestamp = element.timestamp
                ctx.element_created_at = element.created_at
                ctx.input_index = input_index
                set_current_key(element.key)
                operator_process(element, ctx)
                pending = ctx.pending_output
                if pending:
                    ctx.pending_output = []
                    for record in pending:
                        tail = self._emit_nowait(record)
                        if tail is not None:
                            yield from tail
            elif element.is_watermark:
                yield from self._handle_watermark(channel_index, element.timestamp)
            elif element.is_barrier:
                if self.seep_dedup:
                    self._seep_channel_epoch[channel_index] = element.checkpoint_id
                yield from self._handle_barrier(channel_index, element)
            elif isinstance(element, EndOfStream):
                self._channels_done.add(channel_index)
        if buffer.recycle_on_consume:
            buffer.recycle()

    def _process_record(self, record: StreamRecord, channel_index: int):
        self.offset_in_epoch += 1
        self.records_processed += 1
        self.charge(self.cost.record_cpu_cost)
        ctx = self.ctx
        ctx.current_key = record.key
        ctx.element_timestamp = record.timestamp
        ctx.element_created_at = record.created_at
        ctx.input_index = self.input_infos[channel_index].input_index
        self.backend.set_current_key(record.key)
        self.operator.process(record, ctx)
        yield from self._drain_output()

    def _fire_timer(self, timer: Timer):
        if self.causal is not None:
            self.causal.append_main(
                TimerFiredDeterminant(timer.timer_id, self.offset_in_epoch)
            )
        self.charge(self.cost.record_cpu_cost)
        ctx = self.ctx
        ctx.current_key = timer.key
        ctx.element_timestamp = timer.fire_time
        ctx.element_created_at = None
        self.backend.set_current_key(timer.key)
        self.operator.on_timer(timer, ctx)
        yield from self._drain_output()
        yield from self._pay()

    def _handle_watermark(self, channel_index: int, watermark_ts: float):
        advanced = self._wm_tracker.update(channel_index, watermark_ts)
        if advanced is None:
            return
        ctx = self.ctx
        ctx.current_watermark = advanced
        for timer in self.timers.advance_watermark(advanced):
            self.charge(self.cost.record_cpu_cost)
            ctx.current_key = timer.key
            ctx.element_timestamp = timer.fire_time
            ctx.element_created_at = None
            self.backend.set_current_key(timer.key)
            self.operator.on_timer(timer, ctx)
            yield from self._drain_output()
        self.operator.on_watermark(advanced, ctx)
        yield from self._drain_output()
        for edge in self.out_edges:
            yield from edge.writer.broadcast(Watermark(advanced))

    def _handle_barrier(self, channel_index: int, barrier: CheckpointBarrier):
        checkpoint_id = barrier.checkpoint_id
        if SANITIZER.enabled:
            SANITIZER.on_barrier(self.name, channel_index, checkpoint_id)
        if checkpoint_id <= self.epoch:
            return  # duplicate barrier re-delivered by an at-least-once replay
        if checkpoint_id in self._cancelled_alignments:
            # This cut was aborted when an upstream died mid-alignment; a
            # recovered upstream replays its barrier at the logged offset,
            # but the epoch it would close no longer exists.
            return
        if self._aligning is None:
            self._aligning = checkpoint_id
            self._barriers_received = set()
        self._barriers_received.add(channel_index)
        if not self.recovery.active:
            self.gate.block_channel(channel_index)
        alive = set(range(len(self.input_infos))) - self._channels_done
        if self._barriers_received >= alive:
            yield from self._take_checkpoint(checkpoint_id)
            self._aligning = None
            self._barriers_received = set()
            self.gate.unblock_all()

    def on_upstream_reconnected(self, channel_index: int) -> None:
        """A failed upstream's replacement re-attached to ``channel_index``
        (the Section 6.2 reconfiguration handshake).

        If this task is mid-alignment and still owes that upstream's barrier,
        the barrier died with the old incarnation: it re-arrives only after
        the replacement finishes determinant replay, and replay progress can
        depend -- through backpressure on the channels this alignment holds
        shut -- on the alignment releasing first.  That cycle is a
        distributed deadlock (sink aligned on a dead peer's barrier blocks
        its live input, which wedges the common upstream mid-send, which can
        then never serve the replacement's replay request).

        The coordinator aborted the pending cut when it detected the failure
        (``_on_detected``), so the epoch this alignment would close no longer
        exists; cancel it task-side and release the blocked channels.  The
        checkpoint id is remembered so the replayed barrier is dropped
        instead of starting a fresh, never-completable alignment.
        """
        if self._aligning is None or channel_index in self._barriers_received:
            return
        if self.recovery.active:
            # Replay never blocks channels (order determinants dictate the
            # interleaving), so the alignment holds no credits hostage.
            return
        cancelled = self._aligning
        self._cancelled_alignments.add(cancelled)
        self._aligning = None
        self._barriers_received = set()
        self.jm.recovery_events.append(
            (self.env.now, f"alignment-cancelled:{cancelled}", self.name)
        )
        self.gate.unblock_all()

    def _take_checkpoint(self, checkpoint_id: int):
        state_size = self.backend.size_bytes()
        # Synchronous part of the (mostly asynchronous) snapshot.
        self.charge(1e-4 + self.cost.serialize_time(state_size) * 0.05)
        # The operator sees the epoch boundary BEFORE its state is imaged,
        # so a restore resumes in the epoch the checkpoint opens.
        self.operator.on_barrier(checkpoint_id, self.ctx)
        snapshot = self.build_snapshot(checkpoint_id)
        self.jm.snapshot_taken(self, snapshot)
        if self.causal is not None:
            self.causal.on_barrier(checkpoint_id)
            if self.recovery.active:
                self.services.replay_reseed()
            else:
                self.services.reseed_for_epoch(checkpoint_id)
        self.epoch = checkpoint_id
        self.offset_in_epoch = 0
        for edge in self.out_edges:
            yield from edge.writer.broadcast_barrier(CheckpointBarrier(checkpoint_id))
        yield from self._pay()

    def build_snapshot(self, checkpoint_id: int) -> TaskSnapshot:
        return TaskSnapshot(
            self.name,
            checkpoint_id,
            self.backend.snapshot(),
            self.operator.snapshot(),
            {"edges": [edge.writer.snapshot_state() for edge in self.out_edges]},
            self.timers.snapshot(),
            self._wm_tracker.snapshot() if self.input_infos else None,
        )

    # -- emission ----------------------------------------------------------------------------

    def _drain_output(self):
        ctx = self.ctx
        if not ctx.pending_output:
            return
        pending = ctx.pending_output
        ctx.pending_output = []
        for record in pending:
            tail = self._emit_nowait(record)
            if tail is not None:
                yield from tail

    def _emit_record(self, record: StreamRecord):
        tail = self._emit_nowait(record)
        if tail is not None:
            yield from tail

    def _emit_nowait(self, record: StreamRecord):
        """Emit ``record`` on every out edge without touching the kernel when
        possible.  Returns None when fully emitted, else a generator that the
        caller must drive to completion (the blocking remainder)."""
        out_edges = self.out_edges
        for position, edge in enumerate(out_edges):
            out = record
            selector = edge.key_selector
            if selector is not None:
                out = StreamRecord(
                    record.value,
                    timestamp=record.timestamp,
                    key=selector(record.value),
                    created_at=record.created_at,
                )
            tail = edge.writer.emit_or_gen(out)
            if tail is not None:
                return self._emit_tail(tail, record, position + 1)
        return None

    def _emit_tail(self, tail, record: StreamRecord, next_edge: int):
        yield from tail
        for edge in self.out_edges[next_edge:]:
            out = record
            if edge.key_selector is not None:
                out = StreamRecord(
                    record.value,
                    timestamp=record.timestamp,
                    key=edge.key_selector(record.value),
                    created_at=record.created_at,
                )
            yield from edge.writer.emit(out)

    def _maybe_emit_watermark(self):
        if self.env.now - self._last_wm_check < self.config.watermark_interval:
            return
        if any(ch.forced_cuts for ch in self.all_output_channels):
            # Still regenerating pre-failure buffers: inserting a fresh
            # watermark would shift the reproduced buffer boundaries.
            return
        self._last_wm_check = self.env.now
        generator = self.operator.watermark_generator()
        if generator is None:
            return
        watermark = generator.next_watermark()
        if watermark is None:
            return
        if self.causal is not None:
            self.causal.append_main(
                WatermarkEmitDeterminant(watermark, self.offset_in_epoch)
            )
        for edge in self.out_edges:
            yield from edge.writer.broadcast(Watermark(watermark))

    # -- control messages ------------------------------------------------------------------------

    def _handle_control(self, message):
        kind = message.kind
        if kind == "inject_barrier":
            yield from self._inject_barrier(message.payload)
        elif kind == "checkpoint_complete":
            self._on_checkpoint_complete(message.payload)
        elif kind == "replay_request":
            self._on_replay_request(**message.payload)
        elif kind == "cancel_alignment":
            self._cancel_alignment(message.payload)
        elif kind == "stop":
            raise Interrupt("stopped")
        else:
            raise RecoveryError(f"{self.name}: unknown control message {kind!r}")

    def _inject_barrier(self, checkpoint_id: int):
        if self.recovery.active:
            # The barrier will be re-injected at its logged offset instead.
            return
        if self.causal is not None:
            self.causal.append_main(
                BarrierInjectDeterminant(checkpoint_id, self.offset_in_epoch)
            )
        yield from self._take_checkpoint(checkpoint_id)

    def _cancel_alignment(self, checkpoint_id: int) -> None:
        """The coordinator aborted this pending cut on its timeout (e.g. the
        barrier-injection RPC to one source was lost, so one input never
        carries the barrier).  An alignment on it would hold channels —
        and, through the bounded buffer pool, the whole pipeline — blocked
        forever.  Drop the cut and release the channels; the id is
        remembered so a late barrier cannot restart the alignment."""
        self._cancelled_alignments.add(checkpoint_id)
        if self._aligning != checkpoint_id:
            return
        self._aligning = None
        self._barriers_received = set()
        self.jm.recovery_events.append(
            (self.env.now, f"alignment-cancelled:{checkpoint_id}", self.name)
        )
        self.gate.unblock_all()

    def _on_checkpoint_complete(self, checkpoint_id: int) -> None:
        if self.causal is not None:
            self.causal.on_checkpoint_complete(checkpoint_id)
        if self.inflight is not None:
            self.inflight.truncate_before(checkpoint_id)
        self.operator.on_checkpoint_complete(checkpoint_id, self.ctx)

    def _on_replay_request(
        self,
        flat_channel: int,
        from_epoch: int,
        delivered_seq: int,
        requester: str,
        live_seq: bool = False,
    ) -> None:
        """An in-flight log replay request from a recovering downstream
        (step 4 of the protocol); serving it is step 5.

        ``live_seq`` (link repair): re-read the receiver's delivered sequence
        number at serve time, excluding anything that trickled in between the
        repair decision and this request's arrival.
        """
        channel = self.output_channel_by_flat_index(flat_channel)
        if live_seq and channel.link.receiver is not None:
            delivered_seq = max(delivered_seq, channel.link.receiver.delivered_seq)
            channel.suppress_until_seq = max(channel.suppress_until_seq, delivered_seq)
        else:
            # A recovering receiver's delivered_seq is authoritative, not a
            # floor: it rolls back to its restored checkpoint, which may be
            # BELOW the previous incarnation's high-water mark — and the
            # buffers between the two must be re-sent, not deduplicated
            # against a dead incarnation's progress.
            channel.suppress_until_seq = delivered_seq
        if self.causal is not None:
            # Re-send the full log on the next buffers: the reconnected
            # receiver may have lost its causal store (idempotent merge makes
            # over-sending safe).
            self.causal.reset_channel_cursors(flat_channel)
        if self.inflight is None:
            raise RecoveryError(
                f"{self.name}: replay requested but no in-flight log configured"
            )
        # A retried/duplicated request for the same channel supersedes the
        # server already running: the newest delivered_seq wins (the older
        # replay would re-deliver sequences the newer request excludes).
        stale = self._active_replays.get(flat_channel)
        if stale is not None and stale.is_alive:
            stale.kill()
        # If this task is itself recovering (lineage, Section 5.1), the same
        # mechanism works: regenerated buffers are parked unsent while
        # ``replaying`` and the rescan loop streams them out in order.
        proc = self.env.process(
            self._serve_replay(channel, from_epoch, delivered_seq),
            name=f"replay:{self.name}->ch{flat_channel}",
        )
        self._active_replays[flat_channel] = proc
        self._service_procs.append(proc)

    def _serve_replay(self, channel: OutputChannel, from_epoch: int, delivered_seq: int):
        channel.replaying = True
        delta_provider = (
            self.causal.delta_for_dispatch if self.causal is not None else None
        )
        try:
            yield from self.inflight.replay(
                channel.index,
                from_epoch,
                channel.link,
                skip_up_to_seq=delivered_seq,
                delta_provider=delta_provider,
            )
        except IntegrityError:
            # A logged buffer failed its checksum: this log cannot reproduce
            # the lost data, and replaying the corrupt copy would be silent
            # wrong output downstream.  Degrade — the global restart
            # regenerates the records from the sources instead.
            self.jm.coordinator.degrade(self.name, "inflight-replay-corrupt")
        finally:
            channel.replaying = False

    # -- determinant-driven replay (recovery) ---------------------------------------------------

    def _abandon_replay(self, exc: DeterminantLogError) -> bool:
        """Replay cannot proceed consistently from the logs (an upstream
        recovered without determinants, or a compound incident — e.g. a
        zone outage — rebuilt both ends of a channel into disagreeing log
        positions).

        Consistency mode (``fallback_to_global``): announce the divergence
        and degrade to a global rollback, which regenerates the lost data
        from the sources — an injected compound fault is absorbed, never
        surfaced as a job crash.  Returns True: the caller must stop
        replaying (the restart cancels this incarnation).

        Availability mode (Section 5.4, fallback disabled): abandon the log
        and continue divergently — at-least-once.  Returns False: the
        caller keeps processing the buffer it holds."""
        self.jm.recovery_events.append((self.env.now, "replay-diverged", self.name))
        if self.config.clonos.fallback_to_global:
            self.recovery.force_finish()
            self.jm.coordinator.degrade(self.name, "replay-diverged")
            return True
        for channel in self.all_output_channels:
            channel.suppress_until_seq = -1
            channel.forced_cuts.clear()
        self.recovery.force_finish()
        self._finish_recovery()
        return False

    def _data_replay_step(self):
        det = self.recovery.peek_control()
        if det is None:
            self.recovery.force_finish()
            self._finish_recovery()
            return
        if det.kind == "order":
            self.recovery.pop_control()
            buffer = yield from self.gate.take_from(det.channel)
            if buffer.seq != det.seq:
                if self._abandon_replay(
                    DeterminantLogError(
                        f"{self.name}: replay expected buffer seq {det.seq} on "
                        f"channel {det.channel}, got {buffer.seq}"
                    )
                ):
                    if buffer.recycle_on_consume:
                        buffer.recycle()
                    return
            try:
                yield from self._process_buffer(det.channel, buffer)
            except DeterminantLogError as exc:
                if self._abandon_replay(exc):
                    return
            yield from self._pay()
        elif det.kind == "timer":
            self.recovery.pop_control()
            timer = self.timers.force_fire(det.timer_id)
            if timer is not None:
                yield from self._fire_timer(timer)
        else:
            raise DeterminantLogError(
                f"{self.name}: unexpected control determinant {det.kind} in data task"
            )
        if not self.recovery.active:
            self._finish_recovery()

    def _source_replay_step(self):
        det = self.recovery.peek_control()
        if det is None:
            self.recovery.force_finish()
            self._finish_recovery()
            return
        if det.kind in ("barrier", "watermark") and self.offset_in_epoch < det.offset:
            yield from self._replay_emit(det.offset - self.offset_in_epoch)
        elif det.kind == "barrier":
            self.recovery.pop_control()
            if self.causal is not None:
                self.causal.append_main(det)
            yield from self._take_checkpoint(det.checkpoint_id)
        elif det.kind == "watermark":
            self.recovery.pop_control()
            if self.causal is not None:
                self.causal.append_main(det)
            generator = self.operator.watermark_generator()
            if generator is not None:
                generator.last_emitted = det.value
            for edge in self.out_edges:
                yield from edge.writer.broadcast(Watermark(det.value))
        elif det.kind == "timer":
            self.recovery.pop_control()
            timer = self.timers.force_fire(det.timer_id)
            if timer is not None:
                yield from self._fire_timer(timer)
        else:
            raise DeterminantLogError(
                f"{self.name}: unexpected control determinant {det.kind} in source"
            )
        if not self.recovery.active:
            self._finish_recovery()

    def _replay_emit(self, count: int):
        records, _next = self.operator.poll(self.ctx, min(count, self.SOURCE_BATCH))
        if not records:
            raise DeterminantLogError(
                f"{self.name}: source replay starved — determinants reference "
                "records the durable log no longer serves"
            )
        for record in records:
            self.offset_in_epoch += 1
            self.records_processed += 1
            self.charge(self.cost.record_cpu_cost)
            yield from self._emit_record(record)
        yield from self._pay()

    def enter_seep_dedup(self, channel_index: int, from_epoch: int) -> None:
        """Arm receiver-side dedup on one channel: the upstream will replay
        everything from ``from_epoch``; drop as many records as we already
        consumed of those epochs."""
        counts = self._seep_counts.setdefault(channel_index, {})
        to_drop = 0
        for epoch in [e for e in counts if e >= from_epoch]:
            to_drop += counts.pop(epoch)
        self._seep_drop[channel_index] = self._seep_drop.get(channel_index, 0) + to_drop

    def _finish_recovery(self) -> None:
        # Leftover forced cuts cover buffers the predecessor dispatched after
        # its last logged nondeterministic event; they MUST keep driving the
        # boundaries (sender-side dedup needs byte-identical regeneration up
        # to the last delivered buffer), so they drain naturally.
        # Step 6: the downstream dedup horizon flushes from here on.
        self.jm.trace.emit(
            self.env.now, "phase-mark", self.name, phase="dedup-flush"
        )
        self.timers.arm_parked()
        self._last_wm_check = self.env.now
        self._set_status(TaskStatus.RUNNING)
        self.jm.task_recovered(self)

    # -- termination --------------------------------------------------------------------------------

    def _finish(self):
        self.operator.close(self.ctx)
        yield from self._drain_output()
        for edge in self.out_edges:
            yield from edge.writer.broadcast(EndOfStream())
            yield from edge.writer.flush_all("eos")
        yield from self._pay()
        self._set_status(TaskStatus.FINISHED)
        self.jm.task_finished(self)
        # A finished task's in-flight/causal logs keep serving recoveries of
        # downstream tasks (the durable-source assumption of Section 5.1):
        # keep draining control messages.
        self._service_procs.append(
            self.env.process(
                self._finished_control_loop(), name=f"finished-ctl:{self.name}"
            )
        )

    def _finished_control_loop(self):
        try:
            while True:
                message = self.control.poll()
                if message is None:
                    yield self.control.signal.wait()
                    continue
                if message.kind == "replay_request":
                    self._on_replay_request(**message.payload)
                elif message.kind == "checkpoint_complete":
                    self._on_checkpoint_complete(message.payload)
                # inject_barrier and the rest are meaningless after EOS.
        except Interrupt:
            return

    def _finish_source(self):
        final_wm = Watermark(float("inf"))
        if self.causal is not None:
            self.causal.append_main(
                WatermarkEmitDeterminant(float("inf"), self.offset_in_epoch)
            )
        for edge in self.out_edges:
            yield from edge.writer.broadcast(final_wm)
        yield from self._finish()

    def __repr__(self) -> str:
        return f"StreamTask({self.name}, {self.status.value})"
