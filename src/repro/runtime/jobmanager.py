"""Job manager: deployment, checkpoint coordination, failure detection.

Builds the physical execution graph (tasks, links, gates, writers) from a
logical :class:`~repro.graph.logical.JobGraph`, drives periodic aligned
checkpoints (Section 3.2), detects failures (heartbeat timeout for vanilla
Flink, connection-reset for Clonos), and delegates recovery to the mode's
coordinator from :mod:`repro.ft.coordinators`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.invariants import SANITIZER
from repro.config import FaultToleranceMode, JobConfig
from repro.core.causal_log import CausalLogManager
from repro.core.inflight_log import InFlightLog
from repro.core.services import CausalServices, NaiveServices
from repro.core.standby import StandbyState
from repro.errors import (
    ExternalSystemError,
    FailureInjectionError,
    IntegrityError,
    JobError,
    RecoveryStallError,
)
from repro.external.dfs import DistributedFileSystem
from repro.integrity.monitor import IntegrityMonitor
from repro.external.http import ExternalService
from repro.graph.logical import FORWARD, JobGraph, LogicalEdge, LogicalNode
from repro.net.buffer import BufferPool
from repro.net.gate import InputChannel, InputGate
from repro.net.link import NetworkLink
from repro.net.partitioner import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.net.writer import OutputChannel, RecordWriter
from repro.recovery.watchdog import RecoveryWatchdog, stall_diagnostics
from repro.runtime.cluster import Cluster
from repro.runtime.task import InputInfo, OutputEdgeInfo, StreamTask, TaskStatus
from repro.sim.core import Environment
from repro.sim.queues import Signal
from repro.sim.rng import RandomStreams
from repro.state.snapshot import SnapshotStore, TaskSnapshot
from repro.trace.events import TraceLog


def task_name_of(vertex_name: str, subtask: int) -> str:
    return f"{vertex_name}[{subtask}]"


class VertexRuntime:
    """Stable physical identity of one subtask across task incarnations."""

    def __init__(self, node: LogicalNode, subtask_index: int):
        self.node = node
        self.subtask_index = subtask_index
        self.name = task_name_of(node.name, subtask_index)
        #: Flattened input descriptors: (flat_idx, input_index, upstream task
        #: name, link, upstream_flat_out_idx) in deterministic order.
        self.in_links: List[Tuple[int, int, str, NetworkLink, int]] = []
        #: Per output edge: list of (flat_channel_idx, downstream task name,
        #: link, edge).
        self.out_links: List[Tuple[LogicalEdge, List[Tuple[int, str, NetworkLink]]]] = []
        self.task: Optional[StreamTask] = None
        self.standby: Optional[StandbyState] = None
        self.node_id: Optional[int] = None

    @property
    def is_source(self) -> bool:
        return self.node.is_source

    @property
    def is_sink(self) -> bool:
        return self.node.is_sink

    def upstream_names(self) -> List[str]:
        return [up for (_f, _i, up, _l) in self.in_links]

    def downstream_names(self) -> List[str]:
        return [down for (_e, chans) in self.out_links for (_f, down, _l) in chans]

    def __repr__(self) -> str:
        return f"VertexRuntime({self.name})"


class JobManager:
    """Owns one job's physical graph and its fault-tolerance machinery."""

    def __init__(
        self,
        env: Environment,
        graph: JobGraph,
        config: JobConfig,
        external: Optional[ExternalService] = None,
        cluster: Optional[Cluster] = None,
    ):
        config.validate()
        self.env = env
        self.graph = graph
        self.config = config
        self.cost = config.cost
        self.external = external
        self.streams = RandomStreams(config.seed)
        self.dfs = DistributedFileSystem(env, config.cost)
        #: Structured sim-time-stamped event bus (repro.trace); always on,
        #: passive by construction — recording only appends to a list.
        self.trace = TraceLog()
        self.integrity = IntegrityMonitor(validate=config.integrity.validate)
        self.integrity.bind_trace(self.trace, lambda: self.env.now)
        self.snapshot_store = SnapshotStore(
            self.dfs,
            incremental=config.incremental_checkpoints,
            retain=config.integrity.retain_checkpoints,
            monitor=self.integrity,
        )
        self.cluster = cluster or Cluster(
            num_nodes=max(4, graph.total_tasks), slots_per_node=2
        )
        self.vertices: Dict[str, VertexRuntime] = {}
        self._adjacency: Dict[str, List[str]] = {}

        # Checkpoint coordination state.
        self.checkpoint_counter = 0
        self.completed_checkpoint = 0
        self._pending_checkpoint: Optional[int] = None
        self._pending_since: Optional[float] = None
        self._pending_acks: Set[str] = set()
        self._aborted_checkpoints: Set[int] = set()
        self._snapshots_of_pending: Dict[str, TaskSnapshot] = {}
        self.checkpoints_completed: List[Tuple[int, float]] = []
        self.checkpoints_aborted = 0

        # Failure / recovery state.
        self.dead_tasks: Set[str] = set()
        self.recovering_tasks: Set[str] = set()
        self.coordinator = None  # set in deploy()
        self.failures_injected: List[Tuple[float, str]] = []
        self.recovery_events: List[Tuple[float, str, str]] = []
        #: Live recovery processes per vertex (supervisor + current step),
        #: so a repeat failure or a global restart can supersede them.
        self.recovery_procs: Dict[str, List[Any]] = {}
        #: Installed by the chaos engine; ControlQueues consult it per
        #: delivery.  None = healthy control plane.
        self.control_chaos = None
        #: Control-plane drop ledger: (owner, kind, reason) -> count,
        #: aggregated here from every ControlQueue for chaos loss accounting.
        self.control_plane_drops: Counter = Counter()
        #: Status-transition subscriptions: task name -> [(predicate, action)].
        self._status_waiters: Dict[str, List[Tuple[Callable, Callable]]] = {}

        self._finished_tasks: Set[str] = set()
        #: Lazily cached sink-vertex names: vertex topology never changes
        #: after construction (recovery swaps tasks *inside* vertices), so
        #: the hot ``_job_finished`` poll need not rescan every vertex.
        self._sink_names: Optional[frozenset] = None
        self.done_signal = Signal(env)
        self._checkpoint_proc = None
        #: NDLint report of the last ``submit(lint=...)`` call, if any.
        self.lint_report = None
        #: Causal-coverage report of the last ``submit(static=...)`` call.
        self.static_report = None
        #: (task_name, exception) for tasks that crashed on a bug (as opposed
        #: to injected failures); surfaced by run_until_done.
        self.crashed: List[Tuple[str, BaseException]] = []
        #: Recovery-liveness monitor: armed on the first detected failure,
        #: ticked by the checkpoint coordinator (zero events of its own).
        self.watchdog = RecoveryWatchdog(self)
        #: Poison-pill bookkeeping (chaos ``poison_pill``): job-scoped so
        #: pill identity and crash counts survive task incarnations.  (Local
        #: import: the chaos package's __init__ imports this module back.)
        from repro.chaos.poison import PoisonRegistry

        self.poison = PoisonRegistry(config.poison_quarantine_after)
        #: Straggler nodes (chaos ``compute_slowdown``): node id -> CPU-cost
        #: multiplier, consulted at task (re)build time so replacement
        #: incarnations landing on a slow node inherit the slowdown.
        self.node_slowdowns: Dict[int, float] = {}

    # -- deployment --------------------------------------------------------------------

    def submit(self, lint: str = "off", static: str = "off"):
        """Lint the job graph for un-intercepted nondeterminism, then deploy.

        ``lint`` selects the per-graph NDLint policy:

        * ``"off"``    — deploy without analysis (same as :meth:`deploy`);
        * ``"warn"``   — run NDLint, print findings to stderr, deploy anyway;
        * ``"strict"`` — refuse graphs with error-severity findings by
          raising :class:`~repro.errors.DeterminismViolation`.

        ``static`` selects the framework-tree causal-coverage policy (same
        three values): it runs :func:`repro.analysis.causal.analyze_tree`
        over the installed ``repro`` sources — the interprocedural
        ND201/ND202/ND203/ND210 gate (same analysis as ``repro
        verify-static``) — so a job never deploys onto a runtime whose own
        recovery coverage has regressed.  ``"warn"`` prints the report to
        stderr; ``"strict"`` raises :class:`DeterminismViolation` on
        findings (or :class:`JobError` when the tree does not even parse).
        The report is kept on :attr:`static_report`.

        Returns the :class:`~repro.analysis.report.LintReport` (None when
        ``lint="off"``), also kept on :attr:`lint_report`.
        """
        if lint not in ("off", "warn", "strict"):
            raise JobError(f"unknown lint policy {lint!r} (off|warn|strict)")
        if static not in ("off", "warn", "strict"):
            raise JobError(f"unknown static policy {static!r} (off|warn|strict)")
        report = None
        if lint != "off":
            import sys

            from repro.analysis import lint_graph
            from repro.errors import DeterminismViolation

            report = lint_graph(self.graph)
            self.lint_report = report
            if lint == "strict" and report.errors:
                raise DeterminismViolation.from_findings(report.errors)
            if report.findings:
                print(report.render(), file=sys.stderr)
        if static != "off":
            import sys

            from repro.analysis.causal import analyze_tree
            from repro.errors import DeterminismViolation

            static_report = analyze_tree()
            self.static_report = static_report
            if not static_report.ok:
                if static == "strict":
                    if static_report.findings:
                        raise DeterminismViolation.from_findings(
                            static_report.findings
                        )
                    raise JobError(
                        "causal-coverage analysis could not parse the tree: "
                        + "; ".join(static_report.parse_errors[:3])
                    )
                print(static_report.render(), file=sys.stderr)
        self.deploy()
        return report

    def deploy(self) -> None:
        """Build the physical graph, start every task, start coordination."""
        from repro.ft.coordinators import make_coordinator

        self._build_physical()
        self.coordinator = make_coordinator(self)
        for vertex in self.vertices.values():
            self._place(vertex)
            task = self._build_task(vertex)
            vertex.task = task
            task.start()
        if self._uses_standbys():
            for vertex in self.vertices.values():
                avoid = {vertex.node_id} if self.config.clonos.standby_anti_affinity else set()
                standby_node = self.cluster.allocate(f"standby:{vertex.name}", avoid)
                vertex.standby = StandbyState(
                    self.env,
                    self.cost,
                    vertex.name,
                    standby_node,
                    monitor=self.integrity,
                    trace=self.trace,
                )
        self._checkpoint_proc = self.env.process(
            self._checkpoint_coordinator(), name="checkpoint-coordinator"
        )

    def _uses_standbys(self) -> bool:
        return (
            self.config.mode
            in (
                FaultToleranceMode.CLONOS,
                FaultToleranceMode.DIVERGENT,
                FaultToleranceMode.SEEP,
                FaultToleranceMode.GAP_RECOVERY,
            )
            and self.config.clonos.standby_tasks
        )

    def _place(self, vertex: VertexRuntime) -> None:
        vertex.node_id = self.cluster.allocate(vertex.name)

    def _build_physical(self) -> None:
        for node in self.graph.topological_order():
            for subtask in range(node.parallelism):
                vertex = VertexRuntime(node, subtask)
                self.vertices[vertex.name] = vertex
        # Wire links edge by edge.
        for node in self.graph.topological_order():
            for edge in node.outputs:
                self._wire_edge(edge)
        self._adjacency = {
            name: vertex.downstream_names() for name, vertex in self.vertices.items()
        }

    def _wire_edge(self, edge: LogicalEdge) -> None:
        up, down = edge.upstream, edge.downstream
        for i in range(up.parallelism):
            sender = self.vertices[task_name_of(up.name, i)]
            targets = (
                [i]
                if edge.partitioning == FORWARD
                else list(range(down.parallelism))
            )
            channels: List[Tuple[int, str, NetworkLink]] = []
            flat_base = sum(len(chans) for (_e, chans) in sender.out_links)
            for pos, j in enumerate(targets):
                receiver = self.vertices[task_name_of(down.name, j)]
                link = NetworkLink(
                    self.env,
                    self.cost,
                    name=f"{sender.name}->{receiver.name}",
                )
                flat_idx = flat_base + pos
                channels.append((flat_idx, receiver.name, link))
                in_flat = len(receiver.in_links)
                receiver.in_links.append(
                    (in_flat, edge.input_index, sender.name, link, flat_idx)
                )
            sender.out_links.append((edge, channels))

    def _make_partitioner(self, edge: LogicalEdge, subtask_index: int):
        if edge.partitioning == "forward":
            return ForwardPartitioner(subtask_index)
        if edge.partitioning == "hash":
            return HashPartitioner()
        if edge.partitioning == "rebalance":
            return RebalancePartitioner()
        if edge.partitioning == "broadcast":
            return BroadcastPartitioner()
        raise JobError(f"unknown partitioning {edge.partitioning}")

    def _build_task(self, vertex: VertexRuntime) -> StreamTask:
        node = vertex.node
        operator = node.factory()
        task = StreamTask(
            self.env,
            self.config,
            vertex.name,
            node.name,
            vertex.subtask_index,
            node.parallelism,
            operator,
            self,
            is_source=node.is_source,
            is_sink=node.is_sink,
        )
        task.node_id = vertex.node_id
        # Per-incarnation inheritance of scenario-pack faults: a replacement
        # (or activated standby) built on a straggler node is slow too, and
        # a task with live/quarantined pills keeps consulting the registry.
        if self.node_slowdowns and vertex.node_id is not None:
            task.compute_slowdown = self.node_slowdowns.get(vertex.node_id, 1.0)
        task._poison_active = self.poison.is_armed(vertex.name)

        num_out_channels = sum(len(chans) for (_e, chans) in vertex.out_links)
        mode = self.config.mode
        causal: Optional[CausalLogManager] = None
        inflight: Optional[InFlightLog] = None
        dsd = self.config.clonos.determinant_sharing_depth
        if mode is FaultToleranceMode.CLONOS:
            inflight = InFlightLog(
                self.env,
                self.cost,
                self.config.clonos.inflight_pool_bytes,
                self.config.clonos.spill_policy,
                self.config.clonos.spill_threshold_fraction,
                name=vertex.name,
                monitor=self.integrity,
            ) if num_out_channels else None
            if dsd is None or dsd > 0:
                causal = CausalLogManager(vertex.name, num_out_channels, dsd)
        elif mode in (FaultToleranceMode.DIVERGENT, FaultToleranceMode.SEEP):
            if num_out_channels:
                inflight = InFlightLog(
                    self.env,
                    self.cost,
                    self.config.clonos.inflight_pool_bytes,
                    self.config.clonos.spill_policy,
                    self.config.clonos.spill_threshold_fraction,
                    name=vertex.name,
                    monitor=self.integrity,
                )
        if causal is not None:
            services = CausalServices(
                self.env,
                causal,
                task.recovery,
                self.external,
                vertex.name,
                root_seed=self.config.seed,
                timestamp_granularity=self.config.clonos.timestamp_granularity,
                external_retry=self.config.clonos.external_retry,
            )
            services.availability_mode = not self.config.clonos.fallback_to_global
        else:
            services = NaiveServices(
                self.env, self.external, vertex.name, root_seed=self.config.seed
            )
        task.attach_ft(services, causal, inflight)
        task.seep_dedup = mode is FaultToleranceMode.SEEP
        task.make_context()

        # Inputs.
        in_channels: List[InputChannel] = []
        infos: List[InputInfo] = []
        for flat_idx, input_index, upstream_name, link, _up_flat in vertex.in_links:
            channel = InputChannel(
                self.env,
                flat_idx,
                capacity=self.cost.input_queue_buffers,
                upstream_name=upstream_name,
            )
            link.attach_receiver(channel)
            in_channels.append(channel)
            infos.append(InputInfo(flat_idx, input_index, upstream_name, link))
        task.attach_inputs(InputGate(self.env, in_channels), infos)

        # Outputs: one shared output pool per task, one writer per edge.
        out_edges: List[OutputEdgeInfo] = []
        if num_out_channels:
            pool = BufferPool(
                self.env,
                self.cost.output_pool_buffers
                * self.cost.buffer_size_bytes
                * num_out_channels,
                self.cost.buffer_size_bytes,
                name=f"out:{vertex.name}",
            )
            task.out_pool = pool
            causal_ctx = task.causal_output_context()
            for edge, channels in vertex.out_links:
                out_channels = [
                    OutputChannel(
                        self.env,
                        self.cost,
                        flat_idx,
                        link,
                        pool,
                        task.charge,
                        causal_ctx=causal_ctx,
                        inflight_log=inflight,
                    )
                    for (flat_idx, _down, link) in channels
                ]
                writer = RecordWriter(
                    self.env,
                    self.cost,
                    out_channels,
                    self._make_partitioner(edge, vertex.subtask_index),
                    task.charge,
                )
                out_edges.append(
                    OutputEdgeInfo(
                        writer,
                        edge.key_selector,
                        [down for (_f, down, _l) in channels],
                    )
                )
        task.attach_outputs(out_edges)
        return task

    # -- checkpoint coordination ----------------------------------------------------------

    def _checkpoint_coordinator(self):
        while True:
            yield self.env.timeout(self.config.checkpoint_interval)
            # Recovery-liveness check rides this loop's existing cadence (it
            # keeps firing through a wedge: stuck checkpoints abort on their
            # timeout below and the loop continues), so the watchdog needs
            # no events of its own and healthy schedules stay byte-identical.
            self.watchdog.on_tick()
            if self._pending_checkpoint is not None:
                # No concurrent checkpoints (Section 6.4) — but a checkpoint
                # stuck past its timeout (lost barrier RPC, DFS outage) is
                # aborted so the job does not stop checkpointing forever.
                pending_for = self.env.now - (self._pending_since or self.env.now)
                if pending_for >= self.config.effective_checkpoint_timeout:
                    cid = self._pending_checkpoint
                    self.abort_pending_checkpoint()
                    self.recovery_events.append(
                        (self.env.now, "checkpoint-aborted:timeout", str(cid))
                    )
                    # Release tasks still aligned on the aborted cut.  If the
                    # barrier-injection RPC to one source was lost, no task
                    # ever sees that source's barrier: the alignment holds
                    # its channels (and, via the bounded buffer pool, the
                    # whole pipeline) blocked forever.  Recovery can't fix
                    # this — nothing is dead — so the abort must unwedge it.
                    for vertex in self.vertices.values():
                        if vertex.is_source or vertex.task is None:
                            continue
                        vertex.task.control.send(
                            "cancel_alignment",
                            cid,
                            reliable=self.config.reliable_control_plane,
                            retry=self.config.rpc_retry,
                        )
                continue
            if self.dead_tasks or self.recovering_tasks:
                continue  # pause during recovery
            if self._job_finished():
                return
            self.checkpoint_counter += 1
            self._pending_checkpoint = self.checkpoint_counter
            self._pending_since = self.env.now
            self._pending_acks = set()
            self._snapshots_of_pending = {}
            self.trace.emit(
                self.env.now,
                "checkpoint-triggered",
                checkpoint_id=self._pending_checkpoint,
            )
            for vertex in self.vertices.values():
                if vertex.is_source and vertex.task is not None:
                    vertex.task.control.send(
                        "inject_barrier", self._pending_checkpoint
                    )

    def snapshot_taken(self, task: StreamTask, snapshot: TaskSnapshot) -> None:
        """A task took its local snapshot; persist it asynchronously, then
        count the ack."""
        self.trace.emit(
            self.env.now,
            "snapshot-taken",
            task.name,
            checkpoint_id=snapshot.checkpoint_id,
        )
        self.env.process(
            self._upload_snapshot(task, snapshot),
            name=f"upload:{task.name}:{snapshot.checkpoint_id}",
        )

    def _upload_snapshot(self, task: StreamTask, snapshot: TaskSnapshot):
        delta = task.backend.incremental_delta_bytes()
        policy = self.config.clonos.dfs_retry
        rng = self.streams.stream(f"upload-retry:{task.name}")
        attempt = 0
        while True:
            try:
                yield from self.snapshot_store.save(snapshot, delta_bytes=delta)
                break
            except ExternalSystemError:
                if attempt >= policy.max_attempts - 1:
                    # Give up: the pending checkpoint aborts via its timeout;
                    # the job keeps running on the previous completed one.
                    self.recovery_events.append(
                        (self.env.now, "checkpoint-upload-failed", task.name)
                    )
                    return
                yield self.env.timeout(policy.delay(attempt, rng))
                attempt += 1
        self._ack_checkpoint(task.name, snapshot)

    def _ack_checkpoint(self, task_name: str, snapshot: TaskSnapshot) -> None:
        cid = snapshot.checkpoint_id
        if cid in self._aborted_checkpoints or cid != self._pending_checkpoint:
            return
        self._pending_acks.add(task_name)
        self._snapshots_of_pending[task_name] = snapshot
        if self._pending_acks >= set(self.vertices.keys()) - self._finished_tasks:
            self._complete_checkpoint(cid)

    def _complete_checkpoint(self, checkpoint_id: int) -> None:
        self._pending_checkpoint = None
        self._pending_since = None
        self.completed_checkpoint = checkpoint_id
        self.checkpoints_completed.append((checkpoint_id, self.env.now))
        self.trace.emit(
            self.env.now, "checkpoint-complete", checkpoint_id=checkpoint_id
        )
        snapshots = dict(self._snapshots_of_pending)
        self._snapshots_of_pending = {}
        # Retain-last-N subsumption GC: keep the newest N completed epochs
        # (the multi-epoch fallback ladder's raw material), delete everything
        # older from memory *and* the DFS so the blob footprint stays bounded.
        self.snapshot_store.retire([cid for cid, _t in self.checkpoints_completed])
        for vertex in self.vertices.values():
            if vertex.task is not None and vertex.task.status in (
                TaskStatus.RUNNING,
                TaskStatus.RECOVERING,
            ):
                vertex.task.control.send("checkpoint_complete", checkpoint_id)
            # State-snapshot dispatch to standbys (Section 6.4).  A standby
            # lost to a node crash self-heals here: re-provision before
            # dispatching so HA is restored with the freshest state.
            if vertex.standby is not None and vertex.standby.failed:
                self.reprovision_standby(vertex)
            if vertex.standby is not None and vertex.name in snapshots:
                self.env.process(
                    vertex.standby.dispatch(snapshots[vertex.name]),
                    name=f"standby-dispatch:{vertex.name}",
                )

    def abort_pending_checkpoint(self) -> None:
        if self._pending_checkpoint is not None:
            self._aborted_checkpoints.add(self._pending_checkpoint)
            self.trace.emit(
                self.env.now,
                "checkpoint-aborted",
                checkpoint_id=self._pending_checkpoint,
            )
            self._pending_checkpoint = None
            self._pending_since = None
            self._snapshots_of_pending = {}
            self.checkpoints_aborted += 1

    # -- failure handling -------------------------------------------------------------------

    def detection_delay(self) -> float:
        """How long until the failure is noticed (Section 7.1 heartbeats for
        vanilla Flink; connection reset for local-recovery modes)."""
        if self.config.mode is FaultToleranceMode.GLOBAL_ROLLBACK:
            return self.cost.heartbeat_timeout
        return self.cost.connection_failure_detection

    def _killable_statuses(self, force: bool) -> Tuple[TaskStatus, ...]:
        return (
            (TaskStatus.RUNNING, TaskStatus.RECOVERING)
            if force
            else (TaskStatus.RUNNING,)
        )

    def kill_task(self, task_name: str, force: bool = False) -> None:
        """Failure injection entry point.

        If the victim is not currently running (e.g. the previous failure's
        global restart is still redeploying it), the injection is deferred
        until its status transitions to a killable one — the experiment's
        "three sequential failures" really means three failures of live
        tasks.  The deferral is subscription-based (no polling) and bounded
        by ``cost.kill_deferral_deadline``; a victim that never becomes
        killable raises :class:`~repro.errors.FailureInjectionError` naming
        its actual status.

        ``force=True`` (chaos) also kills tasks mid-recovery — the
        failure-during-ongoing-recovery scenario.
        """
        vertex = self.vertices[task_name]
        task = vertex.task
        if task is None or task.status not in self._killable_statuses(force):
            self._defer_kill(vertex, force)
            return
        self.failures_injected.append((self.env.now, task_name))
        self.trace.emit(self.env.now, "failure-injected", task_name)
        task.fail()
        self.dead_tasks.add(task_name)
        self.cluster.release(task_name)
        # Connection reset: surviving upstreams observe the broken channel
        # instantly and park further output in their in-flight logs (§6.1's
        # unsent parking) until the replacement requests replay.  Without
        # this, live buffers would race ahead of the replayed ones.
        for _in_flat, _inp, up_name, _link, up_flat in vertex.in_links:
            up_task = self.vertices[up_name].task
            if (
                up_task is not None
                and up_task.status is not TaskStatus.FAILED
                and up_task.inflight is not None
            ):
                up_task.output_channel_by_flat_index(up_flat).replaying = True
        self.env.schedule_callback(
            self.detection_delay(), lambda name=task_name: self._on_detected(name)
        )

    def _defer_kill(self, vertex: VertexRuntime, force: bool) -> None:
        name = vertex.name
        current = vertex.task.status if vertex.task is not None else None
        if name in self._finished_tasks or current is TaskStatus.FINISHED:
            raise FailureInjectionError(name, current)
        state = {"done": False}
        killable = self._killable_statuses(force)

        def pred(task: StreamTask) -> bool:
            return not state["done"] and task.status in killable

        def action(task: StreamTask) -> None:
            state["done"] = True
            # Defer one tick: killing synchronously from inside the status
            # notification would tear the task down mid-``start()``.
            self.env.schedule_callback(0.0, lambda: self.kill_task(name, force))

        self._add_status_waiter(name, pred, action)
        deadline = self.cost.kill_deferral_deadline

        def give_up() -> None:
            if state["done"]:
                return
            state["done"] = True
            task = vertex.task
            raise FailureInjectionError(
                name,
                task.status if task is not None else None,
                waited=deadline,
            )

        self.env.schedule_callback(deadline, give_up)

    def _add_status_waiter(
        self,
        task_name: str,
        pred: Callable[[StreamTask], bool],
        action: Callable[[StreamTask], None],
    ) -> None:
        self._status_waiters.setdefault(task_name, []).append((pred, action))

    def task_status_changed(self, task: StreamTask) -> None:
        """Called by every :class:`StreamTask` status transition; fires (and
        removes) any subscription whose predicate now holds."""
        waiters = self._status_waiters.get(task.name)
        if not waiters:
            return
        remaining = []
        for pred, action in waiters:
            if pred(task):
                action(task)
            else:
                remaining.append((pred, action))
        if remaining:
            self._status_waiters[task.name] = remaining
        else:
            self._status_waiters.pop(task.name, None)

    def kill_node(self, node_id: int, force: bool = False, fail_node: bool = False) -> None:
        """Kill every running task placed on a cluster node, and fail any
        standby replicas hosted there (their snapshots die with the node).

        ``fail_node=True`` additionally marks the node dead in the cluster,
        so replacements must be placed elsewhere.
        """
        occupants = sorted(self.cluster.occupants_of_node(node_id))
        if fail_node:
            self.cluster.fail_node(node_id)
        killable = self._killable_statuses(force)
        for occupant in occupants:
            if occupant.startswith("standby:"):
                name = occupant[len("standby:"):]
                vertex = self.vertices.get(name)
                if vertex is not None and vertex.standby is not None:
                    vertex.standby.fail()
                    self.recovery_events.append(
                        (self.env.now, "standby-lost", name)
                    )
                if not fail_node:
                    self.cluster.release(occupant)
                continue
            if occupant in self.vertices:
                vertex = self.vertices[occupant]
                if vertex.task is not None and vertex.task.status in killable:
                    self.kill_task(occupant, force=force)

    def allocate_task_slot(self, vertex: VertexRuntime) -> int:
        """Allocate a slot for a (re)starting task, evicting a standby under
        slot pressure.

        After a node failure the cluster may no longer fit every task plus
        every standby.  Running tasks outrank HA spares: when allocation
        fails, sacrifice a standby (preferring the restarting vertex's own —
        its state is superseded by the restart anyway), record the eviction,
        and retry.  Only when no standby is left to evict does the slot
        exhaustion propagate."""
        while True:
            try:
                return self.cluster.allocate(vertex.name)
            except JobError:
                if not self._evict_one_standby(prefer=vertex.name):
                    raise

    def _evict_one_standby(self, prefer: Optional[str] = None) -> bool:
        candidates = sorted(
            name
            for name, vx in self.vertices.items()
            if vx.standby is not None
            and not vx.standby.failed
            and self.cluster.node_of(f"standby:{name}") is not None
        )
        if not candidates:
            return False
        victim = prefer if prefer in candidates else candidates[0]
        self.cluster.release(f"standby:{victim}")
        self.vertices[victim].standby.fail()
        self.recovery_events.append((self.env.now, "standby-evicted", victim))
        return True

    def reprovision_standby(self, vertex: VertexRuntime) -> Optional[StandbyState]:
        """Escalation-ladder HA repair: replace a failed standby with a fresh
        one (anti-affine placement), hydrated in the background from the
        latest completed DFS checkpoint.  Deferred (not fatal) when the
        cluster has no free slot — a task outranks its spare."""
        if not self._uses_standbys():
            return None
        avoid = (
            {vertex.node_id}
            if self.config.clonos.standby_anti_affinity and vertex.node_id is not None
            else set()
        )
        try:
            node = self.cluster.allocate(f"standby:{vertex.name}", avoid)
        except JobError:
            self.recovery_events.append(
                (self.env.now, "standby-reprovision-deferred", vertex.name)
            )
            return None
        standby = StandbyState(
            self.env, self.cost, vertex.name, node, monitor=self.integrity,
            trace=self.trace,
        )
        vertex.standby = standby
        self.recovery_events.append(
            (self.env.now, "standby-reprovisioned", vertex.name)
        )
        cid = self.completed_checkpoint
        if cid > 0 and self.snapshot_store.get(vertex.name, cid) is not None:
            self.env.process(
                self._hydrate_standby(vertex, standby, cid),
                name=f"standby-hydrate:{vertex.name}",
            )
        return standby

    def _hydrate_standby(self, vertex: VertexRuntime, standby: StandbyState, cid: int):
        try:
            snapshot = yield from self.snapshot_store.load(vertex.name, cid)
        except (ExternalSystemError, IntegrityError):
            return  # the next completed checkpoint's dispatch will hydrate it
        if vertex.standby is standby and not standby.failed:
            yield from standby.dispatch(snapshot)

    def note_control_drop(self, owner: str, kind: str, reason: str) -> None:
        """Per-queue drop accounting rollup (chaos loss ledger)."""
        self.control_plane_drops[(owner, kind, reason)] += 1

    def note_poison_quarantine(self, task_name: str, origin) -> None:
        """A poison pill crossed its crash budget and is now skipped forever:
        an *announced* degradation (the record is knowingly dropped), so
        divergence-from-baseline checkers can tell it from silent loss."""
        self.recovery_events.append(
            (self.env.now, "degraded:poison_quarantined", task_name)
        )
        self.trace.emit(
            self.env.now, "poison-quarantined", task_name, origin=str(origin)
        )

    def cancel_recovery_procs(self) -> None:
        """Kill every in-flight recovery process (global restart supersedes
        all per-task recoveries)."""
        for name, procs in self.recovery_procs.items():
            for proc in procs:
                if proc.is_alive:
                    proc.kill()
            procs.clear()

    def repair_channel(self, up_name: str, flat_idx: int, down_name: str) -> None:
        """Sender-driven repair of a link that lost buffers (chaos
        ``link_loss``): purge everything on the wire, clear the broken flag,
        and have the upstream's in-flight log retransmit from the receiver's
        delivered sequence number — FIFO restored without killing a task."""
        up_vertex = self.vertices[up_name]
        link = None
        for _edge, channels in up_vertex.out_links:
            for f_idx, d_name, lnk in channels:
                if f_idx == flat_idx and d_name == down_name:
                    link = lnk
        if link is None:
            return
        up_task = up_vertex.task
        down_task = self.vertices[down_name].task
        if (
            up_task is None
            or up_task.status is TaskStatus.FAILED
            or down_task is None
            or down_task.status is TaskStatus.FAILED
        ):
            # An endpoint is dead: its own recovery rebuilds this channel
            # (and performs the dedup handshake); just clear the breakage.
            if link.chaos is not None:
                link.chaos.broken = False
            return
        channel = up_task.output_channel_by_flat_index(flat_idx)
        channel.replaying = True  # park fresh output until the replay runs
        link.purge()
        if link.chaos is not None:
            link.chaos.broken = False
        self.recovery_events.append((self.env.now, "link-repair", link.name))
        receiver = link.receiver
        delivered = receiver.delivered_seq if receiver is not None else -1

        def note_retry(n: int, up: str = up_name) -> None:
            self.recovery_events.append(
                (self.env.now, f"rpc-retry:replay_request:{n}", up)
            )

        up_task.control.send(
            "replay_request",
            {
                "flat_channel": flat_idx,
                "from_epoch": self.completed_checkpoint,
                "delivered_seq": delivered,
                "requester": down_name,
                "live_seq": True,
            },
            sender="chaos-repair",
            reliable=self.config.reliable_control_plane,
            retry=self.config.rpc_retry,
            on_retry=note_retry,
        )

    def _on_detected(self, task_name: str) -> None:
        if task_name not in self.dead_tasks:
            return  # already recovered via a broader action (global restart)
        self.abort_pending_checkpoint()
        self.recovery_events.append((self.env.now, "detected", task_name))
        self.trace.emit(self.env.now, "failure-detected", task_name)
        self.watchdog.incident_opened(task_name)
        self.coordinator.on_failure_detected(task_name)

    # -- task callbacks ----------------------------------------------------------------------

    def task_recovered(self, task: StreamTask) -> None:
        self.recovering_tasks.discard(task.name)
        self.recovery_events.append((self.env.now, "recovered", task.name))
        self.trace.emit(self.env.now, "task-recovered", task.name)

    def task_crashed(self, task: StreamTask, exc: BaseException) -> None:
        self.crashed.append((task.name, exc))
        self.done_signal.pulse()

    def task_finished(self, task: StreamTask) -> None:
        self._finished_tasks.add(task.name)
        if self._job_finished():
            self.done_signal.pulse()

    def _job_finished(self) -> bool:
        sinks = self._sink_names
        if sinks is None:
            sinks = self._sink_names = frozenset(
                v.name for v in self.vertices.values() if v.is_sink
            )
        return bool(sinks) and sinks <= self._finished_tasks

    # -- harness helpers -------------------------------------------------------------------------

    def wait_done(self):
        """Generator: waits until every sink finished (finite jobs only)."""
        while not self._job_finished():
            yield self.done_signal.wait()

    def run_until_done(self, limit: float = 3600.0) -> float:
        """Drive the simulation until the job finishes; returns the time."""
        env = self.env
        env.process(self.wait_done(), name="wait-done")
        deadline = env.now + limit
        # Hot loop: hoist the bound methods and the queue; peek() is inlined
        # (an empty queue peeks +inf, which always exceeds the deadline).
        queue = env._queue
        step = env.step
        crashed = self.crashed
        finished = self._job_finished
        while not finished():
            if crashed:
                name, exc = crashed[0]
                if isinstance(exc, RecoveryStallError):
                    # The watchdog's structured verdict: surface it as-is.
                    raise exc
                raise JobError(f"task {name} crashed: {exc!r}") from exc
            if not queue or queue[0][0] > deadline:
                # Deadline expiry never dies as a bare timeout: attach the
                # incident id, the stuck phase, and every task's replay
                # position (works with the watchdog disabled too).
                raise stall_diagnostics(
                    self,
                    last_progress_at=self.watchdog.last_progress_at,
                    detail=f"job did not finish within {limit}s of simulated time",
                )
            step()
        if SANITIZER.enabled:
            SANITIZER.on_job_done(self)
        return self.env.now

    def task_of(self, task_name: str) -> StreamTask:
        return self.vertices[task_name].task

    def start_failure_detector(self, threshold: Optional[int] = None):
        """Opt-in heartbeat failure detector (see
        :class:`SuspicionFailureDetector`); returns the detector."""
        detector = SuspicionFailureDetector(self, threshold=threshold)
        detector.start()
        return detector

    @property
    def adjacency(self) -> Dict[str, List[str]]:
        return self._adjacency


class SuspicionFailureDetector:
    """Heartbeat-based failure detection with false-positive suppression.

    Every task heartbeats the job manager each ``cost.heartbeat_interval``;
    heartbeats ride the control plane, so chaos-injected RPC loss makes a
    perfectly healthy task *look* dead.  A naive detector (threshold 1)
    fails over on a single missed beat — a spurious recovery costing a full
    local-recovery cycle.  The hardened detector only declares failure after
    ``cost.suspicion_threshold`` *consecutive* missed heartbeats: isolated
    drops raise suspicion (recorded in ``recovery_events``) without
    triggering recovery.
    """

    def __init__(self, jm: JobManager, threshold: Optional[int] = None):
        self.jm = jm
        self.env = jm.env
        self.cost = jm.config.cost
        self.threshold = (
            threshold if threshold is not None else max(1, self.cost.suspicion_threshold)
        )
        self.last_beat: Dict[str, float] = {}
        self.missed: Dict[str, int] = {}
        #: (time, task, consecutive misses) for every suspicion raised.
        self.suspicions: List[Tuple[float, str, int]] = []
        #: (time, task) for every declared (spurious) failure.
        self.declared_failed: List[Tuple[float, str]] = []
        self.heartbeats_lost = 0

    def start(self) -> None:
        for name in self.jm.vertices:
            self.last_beat[name] = self.env.now
            self.missed[name] = 0
            self._schedule_beat(name)
        self.env.process(self._monitor(), name="failure-detector")

    def _alive(self, name: str) -> bool:
        task = self.jm.vertices[name].task
        return task is not None and task.status in (
            TaskStatus.RUNNING,
            TaskStatus.RECOVERING,
        )

    def _schedule_beat(self, name: str) -> None:
        def beat() -> None:
            if self._alive(name):
                chaos = self.jm.control_chaos
                if chaos is not None and chaos.should_drop(self.env.now, name):
                    self.heartbeats_lost += 1
                    self.jm.note_control_drop(name, "heartbeat", "chaos-lost")
                else:
                    self.last_beat[name] = self.env.now
            self.env.schedule_callback(self.cost.heartbeat_interval, beat)

        self.env.schedule_callback(self.cost.heartbeat_interval, beat)

    def _monitor(self):
        interval = self.cost.heartbeat_interval
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for name in self.jm.vertices:
                if not self._alive(name):
                    self.missed[name] = 0
                    continue
                if now - self.last_beat[name] > 1.5 * interval:
                    self.missed[name] += 1
                    self.suspicions.append((now, name, self.missed[name]))
                    self.jm.recovery_events.append(
                        (now, f"suspected:{self.missed[name]}", name)
                    )
                    if self.missed[name] >= self.threshold:
                        self.missed[name] = 0
                        self.declared_failed.append((now, name))
                        self.jm.recovery_events.append(
                            (now, "spurious-failover", name)
                        )
                        self.jm.kill_task(name, force=True)
                else:
                    self.missed[name] = 0
