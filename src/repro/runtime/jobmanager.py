"""Job manager: deployment, checkpoint coordination, failure detection.

Builds the physical execution graph (tasks, links, gates, writers) from a
logical :class:`~repro.graph.logical.JobGraph`, drives periodic aligned
checkpoints (Section 3.2), detects failures (heartbeat timeout for vanilla
Flink, connection-reset for Clonos), and delegates recovery to the mode's
coordinator from :mod:`repro.ft.coordinators`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.invariants import SANITIZER
from repro.config import FaultToleranceMode, JobConfig
from repro.core.causal_log import CausalLogManager
from repro.core.inflight_log import InFlightLog
from repro.core.services import CausalServices, NaiveServices
from repro.core.standby import StandbyState
from repro.errors import JobError
from repro.external.dfs import DistributedFileSystem
from repro.external.http import ExternalService
from repro.graph.logical import FORWARD, JobGraph, LogicalEdge, LogicalNode
from repro.net.buffer import BufferPool
from repro.net.gate import InputChannel, InputGate
from repro.net.link import NetworkLink
from repro.net.partitioner import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)
from repro.net.writer import OutputChannel, RecordWriter
from repro.runtime.cluster import Cluster
from repro.runtime.task import InputInfo, OutputEdgeInfo, StreamTask, TaskStatus
from repro.sim.core import Environment
from repro.sim.queues import Signal
from repro.sim.rng import RandomStreams
from repro.state.snapshot import SnapshotStore, TaskSnapshot


def task_name_of(vertex_name: str, subtask: int) -> str:
    return f"{vertex_name}[{subtask}]"


class VertexRuntime:
    """Stable physical identity of one subtask across task incarnations."""

    def __init__(self, node: LogicalNode, subtask_index: int):
        self.node = node
        self.subtask_index = subtask_index
        self.name = task_name_of(node.name, subtask_index)
        #: Flattened input descriptors: (flat_idx, input_index, upstream task
        #: name, link, upstream_flat_out_idx) in deterministic order.
        self.in_links: List[Tuple[int, int, str, NetworkLink, int]] = []
        #: Per output edge: list of (flat_channel_idx, downstream task name,
        #: link, edge).
        self.out_links: List[Tuple[LogicalEdge, List[Tuple[int, str, NetworkLink]]]] = []
        self.task: Optional[StreamTask] = None
        self.standby: Optional[StandbyState] = None
        self.node_id: Optional[int] = None

    @property
    def is_source(self) -> bool:
        return self.node.is_source

    @property
    def is_sink(self) -> bool:
        return self.node.is_sink

    def upstream_names(self) -> List[str]:
        return [up for (_f, _i, up, _l) in self.in_links]

    def downstream_names(self) -> List[str]:
        return [down for (_e, chans) in self.out_links for (_f, down, _l) in chans]

    def __repr__(self) -> str:
        return f"VertexRuntime({self.name})"


class JobManager:
    """Owns one job's physical graph and its fault-tolerance machinery."""

    def __init__(
        self,
        env: Environment,
        graph: JobGraph,
        config: JobConfig,
        external: Optional[ExternalService] = None,
        cluster: Optional[Cluster] = None,
    ):
        config.validate()
        self.env = env
        self.graph = graph
        self.config = config
        self.cost = config.cost
        self.external = external
        self.streams = RandomStreams(config.seed)
        self.dfs = DistributedFileSystem(env, config.cost)
        self.snapshot_store = SnapshotStore(
            self.dfs, incremental=config.incremental_checkpoints
        )
        self.cluster = cluster or Cluster(
            num_nodes=max(4, graph.total_tasks), slots_per_node=2
        )
        self.vertices: Dict[str, VertexRuntime] = {}
        self._adjacency: Dict[str, List[str]] = {}

        # Checkpoint coordination state.
        self.checkpoint_counter = 0
        self.completed_checkpoint = 0
        self._pending_checkpoint: Optional[int] = None
        self._pending_acks: Set[str] = set()
        self._aborted_checkpoints: Set[int] = set()
        self._snapshots_of_pending: Dict[str, TaskSnapshot] = {}
        self.checkpoints_completed: List[Tuple[int, float]] = []

        # Failure / recovery state.
        self.dead_tasks: Set[str] = set()
        self.recovering_tasks: Set[str] = set()
        self.coordinator = None  # set in deploy()
        self.failures_injected: List[Tuple[float, str]] = []
        self.recovery_events: List[Tuple[float, str, str]] = []

        self._finished_tasks: Set[str] = set()
        self.done_signal = Signal(env)
        self._checkpoint_proc = None
        #: NDLint report of the last ``submit(lint=...)`` call, if any.
        self.lint_report = None
        #: (task_name, exception) for tasks that crashed on a bug (as opposed
        #: to injected failures); surfaced by run_until_done.
        self.crashed: List[Tuple[str, BaseException]] = []

    # -- deployment --------------------------------------------------------------------

    def submit(self, lint: str = "off"):
        """Lint the job graph for un-intercepted nondeterminism, then deploy.

        ``lint`` selects the policy:

        * ``"off"``    — deploy without analysis (same as :meth:`deploy`);
        * ``"warn"``   — run NDLint, print findings to stderr, deploy anyway;
        * ``"strict"`` — refuse graphs with error-severity findings by
          raising :class:`~repro.errors.DeterminismViolation`.

        Returns the :class:`~repro.analysis.report.LintReport` (None when
        ``lint="off"``), also kept on :attr:`lint_report`.
        """
        if lint not in ("off", "warn", "strict"):
            raise JobError(f"unknown lint policy {lint!r} (off|warn|strict)")
        report = None
        if lint != "off":
            import sys

            from repro.analysis import lint_graph
            from repro.errors import DeterminismViolation

            report = lint_graph(self.graph)
            self.lint_report = report
            if lint == "strict" and report.errors:
                raise DeterminismViolation.from_findings(report.errors)
            if report.findings:
                print(report.render(), file=sys.stderr)
        self.deploy()
        return report

    def deploy(self) -> None:
        """Build the physical graph, start every task, start coordination."""
        from repro.ft.coordinators import make_coordinator

        self._build_physical()
        self.coordinator = make_coordinator(self)
        for vertex in self.vertices.values():
            self._place(vertex)
            task = self._build_task(vertex)
            vertex.task = task
            task.start()
        if self._uses_standbys():
            for vertex in self.vertices.values():
                avoid = {vertex.node_id} if self.config.clonos.standby_anti_affinity else set()
                standby_node = self.cluster.allocate(f"standby:{vertex.name}", avoid)
                vertex.standby = StandbyState(
                    self.env, self.cost, vertex.name, standby_node
                )
        self._checkpoint_proc = self.env.process(
            self._checkpoint_coordinator(), name="checkpoint-coordinator"
        )

    def _uses_standbys(self) -> bool:
        return (
            self.config.mode
            in (
                FaultToleranceMode.CLONOS,
                FaultToleranceMode.DIVERGENT,
                FaultToleranceMode.SEEP,
                FaultToleranceMode.GAP_RECOVERY,
            )
            and self.config.clonos.standby_tasks
        )

    def _place(self, vertex: VertexRuntime) -> None:
        vertex.node_id = self.cluster.allocate(vertex.name)

    def _build_physical(self) -> None:
        for node in self.graph.topological_order():
            for subtask in range(node.parallelism):
                vertex = VertexRuntime(node, subtask)
                self.vertices[vertex.name] = vertex
        # Wire links edge by edge.
        for node in self.graph.topological_order():
            for edge in node.outputs:
                self._wire_edge(edge)
        self._adjacency = {
            name: vertex.downstream_names() for name, vertex in self.vertices.items()
        }

    def _wire_edge(self, edge: LogicalEdge) -> None:
        up, down = edge.upstream, edge.downstream
        for i in range(up.parallelism):
            sender = self.vertices[task_name_of(up.name, i)]
            targets = (
                [i]
                if edge.partitioning == FORWARD
                else list(range(down.parallelism))
            )
            channels: List[Tuple[int, str, NetworkLink]] = []
            flat_base = sum(len(chans) for (_e, chans) in sender.out_links)
            for pos, j in enumerate(targets):
                receiver = self.vertices[task_name_of(down.name, j)]
                link = NetworkLink(
                    self.env,
                    self.cost,
                    name=f"{sender.name}->{receiver.name}",
                )
                flat_idx = flat_base + pos
                channels.append((flat_idx, receiver.name, link))
                in_flat = len(receiver.in_links)
                receiver.in_links.append(
                    (in_flat, edge.input_index, sender.name, link, flat_idx)
                )
            sender.out_links.append((edge, channels))

    def _make_partitioner(self, edge: LogicalEdge, subtask_index: int):
        if edge.partitioning == "forward":
            return ForwardPartitioner(subtask_index)
        if edge.partitioning == "hash":
            return HashPartitioner()
        if edge.partitioning == "rebalance":
            return RebalancePartitioner()
        if edge.partitioning == "broadcast":
            return BroadcastPartitioner()
        raise JobError(f"unknown partitioning {edge.partitioning}")

    def _build_task(self, vertex: VertexRuntime) -> StreamTask:
        node = vertex.node
        operator = node.factory()
        task = StreamTask(
            self.env,
            self.config,
            vertex.name,
            node.name,
            vertex.subtask_index,
            node.parallelism,
            operator,
            self,
            is_source=node.is_source,
            is_sink=node.is_sink,
        )
        task.node_id = vertex.node_id

        num_out_channels = sum(len(chans) for (_e, chans) in vertex.out_links)
        mode = self.config.mode
        causal: Optional[CausalLogManager] = None
        inflight: Optional[InFlightLog] = None
        dsd = self.config.clonos.determinant_sharing_depth
        if mode is FaultToleranceMode.CLONOS:
            inflight = InFlightLog(
                self.env,
                self.cost,
                self.config.clonos.inflight_pool_bytes,
                self.config.clonos.spill_policy,
                self.config.clonos.spill_threshold_fraction,
                name=vertex.name,
            ) if num_out_channels else None
            if dsd is None or dsd > 0:
                causal = CausalLogManager(vertex.name, num_out_channels, dsd)
        elif mode in (FaultToleranceMode.DIVERGENT, FaultToleranceMode.SEEP):
            if num_out_channels:
                inflight = InFlightLog(
                    self.env,
                    self.cost,
                    self.config.clonos.inflight_pool_bytes,
                    self.config.clonos.spill_policy,
                    self.config.clonos.spill_threshold_fraction,
                    name=vertex.name,
                )
        if causal is not None:
            services = CausalServices(
                self.env,
                causal,
                task.recovery,
                self.external,
                vertex.name,
                root_seed=self.config.seed,
                timestamp_granularity=self.config.clonos.timestamp_granularity,
            )
            services.availability_mode = not self.config.clonos.fallback_to_global
        else:
            services = NaiveServices(
                self.env, self.external, vertex.name, root_seed=self.config.seed
            )
        task.attach_ft(services, causal, inflight)
        task.seep_dedup = mode is FaultToleranceMode.SEEP
        task.make_context()

        # Inputs.
        in_channels: List[InputChannel] = []
        infos: List[InputInfo] = []
        for flat_idx, input_index, upstream_name, link, _up_flat in vertex.in_links:
            channel = InputChannel(
                self.env,
                flat_idx,
                capacity=self.cost.input_queue_buffers,
                upstream_name=upstream_name,
            )
            link.attach_receiver(channel)
            in_channels.append(channel)
            infos.append(InputInfo(flat_idx, input_index, upstream_name, link))
        task.attach_inputs(InputGate(self.env, in_channels), infos)

        # Outputs: one shared output pool per task, one writer per edge.
        out_edges: List[OutputEdgeInfo] = []
        if num_out_channels:
            pool = BufferPool(
                self.env,
                self.cost.output_pool_buffers
                * self.cost.buffer_size_bytes
                * num_out_channels,
                self.cost.buffer_size_bytes,
                name=f"out:{vertex.name}",
            )
            task.out_pool = pool
            causal_ctx = task.causal_output_context()
            for edge, channels in vertex.out_links:
                out_channels = [
                    OutputChannel(
                        self.env,
                        self.cost,
                        flat_idx,
                        link,
                        pool,
                        task.charge,
                        causal_ctx=causal_ctx,
                        inflight_log=inflight,
                    )
                    for (flat_idx, _down, link) in channels
                ]
                writer = RecordWriter(
                    self.env,
                    self.cost,
                    out_channels,
                    self._make_partitioner(edge, vertex.subtask_index),
                    task.charge,
                )
                out_edges.append(
                    OutputEdgeInfo(
                        writer,
                        edge.key_selector,
                        [down for (_f, down, _l) in channels],
                    )
                )
        task.attach_outputs(out_edges)
        return task

    # -- checkpoint coordination ----------------------------------------------------------

    def _checkpoint_coordinator(self):
        while True:
            yield self.env.timeout(self.config.checkpoint_interval)
            if self._pending_checkpoint is not None:
                continue  # no concurrent checkpoints (Section 6.4)
            if self.dead_tasks or self.recovering_tasks:
                continue  # pause during recovery
            if self._job_finished():
                return
            self.checkpoint_counter += 1
            self._pending_checkpoint = self.checkpoint_counter
            self._pending_acks = set()
            self._snapshots_of_pending = {}
            for vertex in self.vertices.values():
                if vertex.is_source and vertex.task is not None:
                    vertex.task.control.send(
                        "inject_barrier", self._pending_checkpoint
                    )

    def snapshot_taken(self, task: StreamTask, snapshot: TaskSnapshot) -> None:
        """A task took its local snapshot; persist it asynchronously, then
        count the ack."""
        self.env.process(
            self._upload_snapshot(task, snapshot),
            name=f"upload:{task.name}:{snapshot.checkpoint_id}",
        )

    def _upload_snapshot(self, task: StreamTask, snapshot: TaskSnapshot):
        delta = task.backend.incremental_delta_bytes()
        yield from self.snapshot_store.save(snapshot, delta_bytes=delta)
        self._ack_checkpoint(task.name, snapshot)

    def _ack_checkpoint(self, task_name: str, snapshot: TaskSnapshot) -> None:
        cid = snapshot.checkpoint_id
        if cid in self._aborted_checkpoints or cid != self._pending_checkpoint:
            return
        self._pending_acks.add(task_name)
        self._snapshots_of_pending[task_name] = snapshot
        if self._pending_acks >= set(self.vertices.keys()) - self._finished_tasks:
            self._complete_checkpoint(cid)

    def _complete_checkpoint(self, checkpoint_id: int) -> None:
        self._pending_checkpoint = None
        self.completed_checkpoint = checkpoint_id
        self.checkpoints_completed.append((checkpoint_id, self.env.now))
        snapshots = dict(self._snapshots_of_pending)
        self._snapshots_of_pending = {}
        self.snapshot_store.discard_older_than(checkpoint_id)
        for vertex in self.vertices.values():
            if vertex.task is not None and vertex.task.status in (
                TaskStatus.RUNNING,
                TaskStatus.RECOVERING,
            ):
                vertex.task.control.send("checkpoint_complete", checkpoint_id)
            # State-snapshot dispatch to standbys (Section 6.4).
            if vertex.standby is not None and vertex.name in snapshots:
                self.env.process(
                    vertex.standby.dispatch(snapshots[vertex.name]),
                    name=f"standby-dispatch:{vertex.name}",
                )

    def abort_pending_checkpoint(self) -> None:
        if self._pending_checkpoint is not None:
            self._aborted_checkpoints.add(self._pending_checkpoint)
            self._pending_checkpoint = None
            self._snapshots_of_pending = {}

    # -- failure handling -------------------------------------------------------------------

    def detection_delay(self) -> float:
        """How long until the failure is noticed (Section 7.1 heartbeats for
        vanilla Flink; connection reset for local-recovery modes)."""
        if self.config.mode is FaultToleranceMode.GLOBAL_ROLLBACK:
            return self.cost.heartbeat_timeout
        return self.cost.connection_failure_detection

    def kill_task(self, task_name: str, _attempts: int = 0) -> None:
        """Failure injection entry point.

        If the victim is not currently running (e.g. the previous failure's
        global restart is still redeploying it), the injection is deferred
        until it is — the experiment's "three sequential failures" really
        means three failures of live tasks.
        """
        vertex = self.vertices[task_name]
        if vertex.task is None or vertex.task.status is not TaskStatus.RUNNING:
            if task_name in self._finished_tasks or _attempts > 600:
                raise JobError(f"cannot kill {task_name}: not running")
            self.env.schedule_callback(
                0.5, lambda: self.kill_task(task_name, _attempts + 1)
            )
            return
        self.failures_injected.append((self.env.now, task_name))
        vertex.task.fail()
        self.dead_tasks.add(task_name)
        self.cluster.release(task_name)
        # Connection reset: surviving upstreams observe the broken channel
        # instantly and park further output in their in-flight logs (§6.1's
        # unsent parking) until the replacement requests replay.  Without
        # this, live buffers would race ahead of the replayed ones.
        for _in_flat, _inp, up_name, _link, up_flat in vertex.in_links:
            up_task = self.vertices[up_name].task
            if (
                up_task is not None
                and up_task.status is not TaskStatus.FAILED
                and up_task.inflight is not None
            ):
                up_task.output_channel_by_flat_index(up_flat).replaying = True
        self.env.schedule_callback(
            self.detection_delay(), lambda name=task_name: self._on_detected(name)
        )

    def kill_node(self, node_id: int) -> None:
        """Kill every running task placed on a cluster node."""
        for occupant in sorted(self.cluster.occupants_of_node(node_id)):
            if occupant in self.vertices:
                vertex = self.vertices[occupant]
                if vertex.task is not None and vertex.task.status is TaskStatus.RUNNING:
                    self.kill_task(occupant)

    def _on_detected(self, task_name: str) -> None:
        if task_name not in self.dead_tasks:
            return  # already recovered via a broader action (global restart)
        self.abort_pending_checkpoint()
        self.recovery_events.append((self.env.now, "detected", task_name))
        self.coordinator.on_failure_detected(task_name)

    # -- task callbacks ----------------------------------------------------------------------

    def task_recovered(self, task: StreamTask) -> None:
        self.recovering_tasks.discard(task.name)
        self.recovery_events.append((self.env.now, "recovered", task.name))

    def task_crashed(self, task: StreamTask, exc: BaseException) -> None:
        self.crashed.append((task.name, exc))
        self.done_signal.pulse()

    def task_finished(self, task: StreamTask) -> None:
        self._finished_tasks.add(task.name)
        if self._job_finished():
            self.done_signal.pulse()

    def _job_finished(self) -> bool:
        sinks = [v.name for v in self.vertices.values() if v.is_sink]
        return bool(sinks) and all(name in self._finished_tasks for name in sinks)

    # -- harness helpers -------------------------------------------------------------------------

    def wait_done(self):
        """Generator: waits until every sink finished (finite jobs only)."""
        while not self._job_finished():
            yield self.done_signal.wait()

    def run_until_done(self, limit: float = 3600.0) -> float:
        """Drive the simulation until the job finishes; returns the time."""
        self.env.process(self.wait_done(), name="wait-done")
        deadline = self.env.now + limit
        while not self._job_finished():
            if self.crashed:
                name, exc = self.crashed[0]
                raise JobError(f"task {name} crashed: {exc!r}") from exc
            if self.env.peek() > deadline:
                raise JobError(f"job did not finish within {limit}s of simulated time")
            self.env.step()
        if SANITIZER.enabled:
            SANITIZER.on_job_done(self)
        return self.env.now

    def task_of(self, task_name: str) -> StreamTask:
        return self.vertices[task_name].task

    @property
    def adjacency(self) -> Dict[str, List[str]]:
        return self._adjacency
