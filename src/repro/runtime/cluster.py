"""Cluster model: nodes, slots, and placement.

Mirrors the paper's deployment (Section 7.1): many TaskManagers with one
slot each, spread over nodes.  Placement matters for standby tasks
(Section 6.3): anti-affinity keeps a standby off the node of the task it
mirrors, trading resource use for failure safety.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import JobError


class ClusterNode:
    """One machine hosting task slots."""

    def __init__(self, node_id: int, slots: int, zone: int = 0):
        self.node_id = node_id
        self.slots = slots
        self.occupants: Set[str] = set()
        #: False once the node has crashed (chaos ``node_crash`` with
        #: ``fail_node=True``): no further placements land here.
        self.alive = True
        #: Availability zone (chaos ``zone_outage`` fails whole zones at
        #: once).  Zone 0 everywhere unless the cluster was built with
        #: ``zones > 1``, so single-zone deployments behave exactly as
        #: before.
        self.zone = zone

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.occupants)

    def __repr__(self) -> str:
        return f"ClusterNode({self.node_id}, {len(self.occupants)}/{self.slots})"


class Cluster:
    """Slot allocation with optional anti-affinity."""

    def __init__(self, num_nodes: int, slots_per_node: int = 2, zones: int = 1):
        if num_nodes < 1:
            raise JobError("cluster needs at least one node")
        if zones < 1:
            raise JobError("cluster needs at least one zone")
        if zones > num_nodes:
            raise JobError("cluster cannot have more zones than nodes")
        self.zones = zones
        # Round-robin zone assignment keeps zones balanced to within one
        # node, whatever num_nodes is.
        self.nodes: List[ClusterNode] = [
            ClusterNode(i, slots_per_node, zone=i % zones) for i in range(num_nodes)
        ]
        self._placement: Dict[str, int] = {}
        #: Placements that had to ignore ``avoid_nodes`` because the cluster
        #: was too full to honour anti-affinity.  Silent before; now every
        #: compromise is counted and logged as (occupant, node_id).
        self.affinity_violations = 0
        self.affinity_violation_log: List[Tuple[str, int]] = []

    def allocate(self, occupant: str, avoid_nodes: Optional[Set[int]] = None) -> int:
        """Place ``occupant`` on the least-loaded allowed node; returns the
        node id.  Falls back to ignoring ``avoid_nodes`` when the cluster is
        too full to honour anti-affinity (a warning-level compromise the
        paper's Section 6.3 trade-off discussion allows) — recording the
        violation in :attr:`affinity_violations`.  Re-allocating an occupant
        that already holds a slot releases the old slot first (a retried
        recovery attempt must not leak placements)."""
        if occupant in self._placement:
            self.release(occupant)
        avoid = avoid_nodes or set()
        candidates = [
            n for n in self.nodes
            if n.alive and n.free_slots > 0 and n.node_id not in avoid
        ]
        if not candidates:
            candidates = [n for n in self.nodes if n.alive and n.free_slots > 0]
            if candidates and avoid:
                self.affinity_violations += 1
                self.affinity_violation_log.append(
                    (occupant, max(candidates,
                                   key=lambda n: (n.free_slots, -n.node_id)).node_id)
                )
        if not candidates:
            raise JobError("cluster out of slots")
        node = max(candidates, key=lambda n: (n.free_slots, -n.node_id))
        node.occupants.add(occupant)
        self._placement[occupant] = node.node_id
        return node.node_id

    def release(self, occupant: str) -> None:
        node_id = self._placement.pop(occupant, None)
        if node_id is not None:
            self.nodes[node_id].occupants.discard(occupant)

    def fail_node(self, node_id: int) -> Set[str]:
        """Mark a node dead: its occupants lose their slots and future
        placements avoid it.  Returns the displaced occupants."""
        node = self.nodes[node_id]
        node.alive = False
        displaced = set(node.occupants)
        for occupant in displaced:
            self.release(occupant)
        return displaced

    def node_of(self, occupant: str) -> Optional[int]:
        return self._placement.get(occupant)

    def occupants_of_node(self, node_id: int) -> Set[str]:
        return set(self.nodes[node_id].occupants)

    def has_node(self, node_id: int) -> bool:
        return 0 <= node_id < len(self.nodes)

    # -- availability zones ------------------------------------------------------------

    def nodes_in_zone(self, zone: int) -> List[ClusterNode]:
        return [n for n in self.nodes if n.zone == zone]

    def live_zones(self) -> List[int]:
        """Zones that still have at least one live node, ascending."""
        return sorted({n.zone for n in self.nodes if n.alive})

    def revive_zone(self, zone: int) -> List[int]:
        """Bring every dead node in a zone back (empty, placeable again) —
        the zone-outage-ends event.  Returns the revived node ids."""
        revived = []
        for node in self.nodes:
            if node.zone == zone and not node.alive:
                node.alive = True
                revived.append(node.node_id)
        return revived
