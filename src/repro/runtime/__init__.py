"""Runtime: tasks, job manager, cluster, control plane."""

from repro.runtime.cluster import Cluster, ClusterNode
from repro.runtime.jobmanager import JobManager, VertexRuntime, task_name_of
from repro.runtime.rpc import ControlMessage, ControlQueue
from repro.runtime.task import StreamTask, TaskStatus

__all__ = [
    "Cluster",
    "ClusterNode",
    "ControlMessage",
    "ControlQueue",
    "JobManager",
    "StreamTask",
    "TaskStatus",
    "VertexRuntime",
    "task_name_of",
]
