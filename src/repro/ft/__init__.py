"""Fault-tolerance scheme coordinators (Clonos + the baselines)."""

from repro.ft.coordinators import (
    ClonosCoordinator,
    GapRecoveryCoordinator,
    GlobalRollbackCoordinator,
    LocalReplayCoordinator,
    make_coordinator,
)

__all__ = [
    "ClonosCoordinator",
    "GapRecoveryCoordinator",
    "GlobalRollbackCoordinator",
    "LocalReplayCoordinator",
    "make_coordinator",
]
