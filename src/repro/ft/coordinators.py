"""Recovery coordinators: one per fault-tolerance scheme.

The job manager delegates detected failures here.  Each coordinator
implements a published recovery strategy:

* :class:`GlobalRollbackCoordinator` — vanilla Flink (Section 3.2): cancel
  the whole graph, restart every task from the last completed checkpoint.
* :class:`ClonosCoordinator` — the paper's protocol (Section 2.2): activate
  a standby, reconfigure the network, retrieve the determinant log from
  downstream, request in-flight replay from upstream, replay with causal
  consistency, deduplicate at the sender.  Falls back to a global rollback
  when the Figure-4 analysis finds an orphan (DSD exceeded).
* :class:`LocalReplayCoordinator` — SEEP/at-least-once style local recovery
  (upstream backup without determinants); with ``seep_dedup`` it adds
  receiver-side count-based deduplication (correct only for deterministic
  operators — Table 1).
* :class:`GapRecoveryCoordinator` — at-most-once gap recovery (Section 5.4):
  restart the failed task from its checkpoint and *skip* lost input.

Recovery itself is supervised (the ``repro.chaos`` hardening): every step
of the six-step protocol runs under a per-step deadline, failed attempts
retry with jittered exponential backoff, and :class:`ClonosCoordinator`
escalates along a ladder — (1) retry local recovery via the standby,
(2) re-provision from the DFS checkpoint with a fresh deployment,
(3) graceful degradation to global-rollback semantics, recorded as a
``degraded:global_rollback`` recovery event.  Replay requests ride the
reliable (acked, resent) control plane so a lossy network cannot wedge
step 4.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import FaultToleranceMode
from repro.core.causal_log import merge_bundles
from repro.core.dsd import (
    RecoveryCase,
    classify_failed_task,
    downstream_within,
    transitive_downstream,
)
from repro.errors import (
    ExternalSystemError,
    IntegrityError,
    JobError,
    RecoveryError,
    ReproError,
)
from repro.operators.source import KafkaSource
from repro.runtime.task import TaskStatus


def make_coordinator(jm):
    mode = jm.config.mode
    if mode is FaultToleranceMode.GLOBAL_ROLLBACK:
        return GlobalRollbackCoordinator(jm)
    if mode is FaultToleranceMode.CLONOS:
        return ClonosCoordinator(jm)
    if mode in (FaultToleranceMode.DIVERGENT, FaultToleranceMode.SEEP):
        return LocalReplayCoordinator(jm, seep_dedup=mode is FaultToleranceMode.SEEP)
    if mode is FaultToleranceMode.GAP_RECOVERY:
        return GapRecoveryCoordinator(jm)
    if mode is FaultToleranceMode.NONE:
        return NoRecoveryCoordinator(jm)
    raise JobError(f"no coordinator for mode {mode}")


class BaseCoordinator:
    def __init__(self, jm):
        self.jm = jm
        self.env = jm.env
        self.cost = jm.config.cost

    def on_failure_detected(self, task_name: str) -> None:
        raise NotImplementedError

    def degrade(self, task_name: str, reason: str) -> None:
        """A recovery artifact needed for exact replay is corrupt beyond
        local repair (e.g. a logged in-flight buffer failed its checksum
        during replay): announce the degradation and restart globally, which
        regenerates the lost data from the sources instead of replaying the
        corrupt copy."""
        jm = self.jm
        jm.recovery_events.append((self.env.now, f"integrity:{reason}", task_name))
        jm.recovery_events.append(
            (self.env.now, "degraded:global_rollback", task_name)
        )
        jm.trace.emit(self.env.now, "degraded", task_name, reason=reason)
        if hasattr(self, "degradations"):
            self.degradations += 1
        fallback = getattr(self, "_fallback", None)
        if fallback is not None:
            fallback.on_failure_detected(task_name)
        else:
            self.on_failure_detected(task_name)

    # -- recovery supervision ---------------------------------------------------------

    def _spawn_recovery(self, vertex, generator):
        """Run ``generator`` as this vertex's recovery process, superseding
        (killing) any still-running recovery for the same vertex — a repeat
        failure mid-recovery restarts the procedure instead of racing it."""
        procs = self.jm.recovery_procs.setdefault(vertex.name, [])
        superseded = False
        for stale in procs:
            if stale.is_alive:
                stale.kill()
                superseded = True
        if superseded:
            self.jm.recovery_events.append(
                (self.env.now, "recovery-superseded", vertex.name)
            )
        procs.clear()
        proc = self.env.process(generator, name=f"recover:{vertex.name}")
        procs.append(proc)
        return proc

    def _step(self, vertex_name: str, generator, deadline: float, label: str):
        """Generator: run one protocol step with a deadline.  Returns
        ``("ok", value)`` or ``("<label>:timeout"/"<label>:error", None)``;
        a timed-out step is killed (its ``finally`` blocks release held
        resources)."""
        proc = self.env.process(generator, name=f"step:{label}:{vertex_name}")
        self.jm.recovery_procs.setdefault(vertex_name, []).append(proc)
        self.jm.trace.emit(self.env.now, "phase-begin", vertex_name, phase=label)
        try:
            yield self.env.any_of([proc, self.env.timeout(deadline)])
        except ReproError:
            self.jm.recovery_events.append(
                (self.env.now, f"step-failed:{label}", vertex_name)
            )
            self.jm.trace.emit(
                self.env.now, "phase-end", vertex_name, phase=label, status="error"
            )
            return (f"{label}:error", None)
        if proc.triggered and proc.ok:
            self.jm.trace.emit(
                self.env.now, "phase-end", vertex_name, phase=label, status="ok"
            )
            return ("ok", proc.value)
        proc.kill()
        self.jm.recovery_events.append(
            (self.env.now, f"step-timeout:{label}", vertex_name)
        )
        self.jm.trace.emit(
            self.env.now, "phase-end", vertex_name, phase=label, status="timeout"
        )
        return (f"{label}:timeout", None)

    # -- shared helpers ---------------------------------------------------------------

    def _obtain_snapshot(self, vertex, prefer_standby: bool = True):
        """Generator: standby activation (fast path) or fresh deployment +
        checkpoint restore from the DFS (slow path).  Returns the snapshot
        (or None when no checkpoint completed yet).  The DFS read retries
        transient failures (outages, brownout timeouts) with backoff."""
        standby = vertex.standby
        if prefer_standby and standby is not None and standby.usable:
            yield self.env.timeout(self.cost.standby_activation_time)
            snapshot = yield from standby.wait_ready()
            vertex.node_id = self.jm.allocate_task_slot(vertex)
            return snapshot
        yield self.env.timeout(self.cost.task_deploy_time)
        vertex.node_id = self.jm.allocate_task_slot(vertex)
        cid = self.jm.completed_checkpoint
        if cid <= 0 or self.jm.snapshot_store.get(vertex.name, cid) is None:
            return None
        snapshot = yield from self._load_with_retry(vertex.name, cid)
        return snapshot

    def _load_with_retry(self, task_name: str, checkpoint_id: int):
        """Generator: ``snapshot_store.load`` under the DFS retry policy."""
        policy = self.jm.config.clonos.dfs_retry
        rng = self.jm.streams.stream(f"dfs-retry:{task_name}")
        attempt = 0
        while True:
            try:
                snapshot = yield from self.jm.snapshot_store.load(
                    task_name, checkpoint_id
                )
                return snapshot
            except ExternalSystemError as exc:
                if attempt >= policy.max_attempts - 1:
                    raise RecoveryError(
                        f"{task_name}: checkpoint {checkpoint_id} restore "
                        f"failed after {attempt + 1} attempts: {exc}"
                    ) from exc
                self.jm.recovery_events.append(
                    (self.env.now, "dfs-retry", task_name)
                )
                yield self.env.timeout(policy.delay(attempt, rng))
                attempt += 1

    def _rebuild_task(self, vertex, snapshot):
        """Construct the replacement and perform the network reconfiguration
        handshake (Section 6.2): fresh input channels attach to the existing
        links; surviving receivers report their delivered sequence numbers
        for sender-side dedup."""
        # Step 2 of the protocol; channel rewiring is instantaneous in the
        # sim, so this is a named zero-width phase in the timeline.
        self.jm.trace.emit(
            self.env.now, "phase-mark", vertex.name, phase="network-reconfigure"
        )
        task = self.jm._build_task(vertex)
        vertex.task = task
        for _edge, channels in vertex.out_links:
            for flat_idx, down_name, link in channels:
                channel = task.output_channel_by_flat_index(flat_idx)
                receiver = link.receiver
                if receiver is not None:
                    channel.suppress_until_seq = receiver.delivered_seq
                    # If the surviving receiver is mid-alignment waiting on
                    # the dead incarnation's barrier, the blocked channels
                    # can deadlock the whole job (they backpressure the very
                    # upstreams this replacement needs for replay); cancel
                    # that alignment -- its cut was aborted on detection.
                    down_task = self.jm.vertices[down_name].task
                    if down_task is not None:
                        down_task.on_upstream_reconnected(receiver.index)
        return task

    def _dismantle(self, vertex, task) -> None:
        """Tear down a partially-built replacement whose recovery attempt
        failed before ``task.start``.

        The rebuild already attached the replacement's input channels to the
        links (the Section 6.2 reconfiguration handshake).  Abandoning it
        without closing its gate leaves link pumps blocked forever on its
        credit queues — upstream replay/regeneration fills the orphaned
        queue, the pump parks inside ``deliver``, and no later incarnation
        (not even a global restart's) ever receives another buffer on that
        link.  Failing the abandoned incarnation detaches its receivers and
        cancels every waiter so the pump recovers, and the next attempt
        attaches a fresh one."""
        if vertex.task is task and task.status is TaskStatus.CREATED:
            task.fail()
            self.jm.recovery_events.append(
                (self.env.now, "recovery-incarnation-abandoned", vertex.name)
            )

    def _request_replays(self, vertex, from_epoch: int) -> None:
        """Step 4: ask upstream tasks to replay their in-flight logs.

        Replay requests are recovery-critical: with the reliable control
        plane they carry ids and are resent until acked, every resend
        recorded in ``recovery_events``."""
        jm = self.jm
        reliable = jm.config.reliable_control_plane
        for _in_flat, _input_index, upstream_name, _link, up_flat in vertex.in_links:
            upstream = jm.vertices[upstream_name].task
            if upstream is None or upstream.status is TaskStatus.FAILED:
                continue  # its own recovery will regenerate and send
            receiver_channel = vertex.task.gate.channels[_in_flat]

            def note_retry(n: int, up: str = upstream_name) -> None:
                jm.recovery_events.append(
                    (self.env.now, f"rpc-retry:replay_request:{n}", up)
                )

            def note_give_up(n: int, up: str = upstream_name) -> None:
                jm.recovery_events.append(
                    (self.env.now, "rpc-exhausted:replay_request", up)
                )

            upstream.control.send(
                "replay_request",
                {
                    "flat_channel": up_flat,
                    "from_epoch": from_epoch,
                    "delivered_seq": receiver_channel.delivered_seq,
                    "requester": vertex.name,
                },
                sender=vertex.name,
                reliable=reliable,
                retry=jm.config.rpc_retry,
                on_retry=note_retry,
                on_give_up=note_give_up,
            )


class NoRecoveryCoordinator(BaseCoordinator):
    def on_failure_detected(self, task_name: str) -> None:
        raise RecoveryError(f"task {task_name} failed and mode=NONE")


class GlobalRollbackCoordinator(BaseCoordinator):
    """Tear everything down, restore the latest global checkpoint."""

    def __init__(self, jm):
        super().__init__(jm)
        self._restarting = False
        self.global_restarts = 0

    def on_failure_detected(self, task_name: str) -> None:
        if self._restarting:
            return  # the ongoing restart covers this failure too
        self._restarting = True
        self.env.process(self._restart_job(), name="global-restart")

    def _restart_job(self):
        jm = self.jm
        jm.abort_pending_checkpoint()
        jm.cancel_recovery_procs()
        self.global_restarts += 1
        jm.recovery_events.append((self.env.now, "global-restart-begin", "*"))
        jm.trace.emit(self.env.now, "global-restart-begin", "*")
        jm.trace.emit(self.env.now, "phase-mark", "*", phase="task-cancellation")
        # Cancel every surviving task (they stop processing immediately) —
        # including tasks still mid-local-recovery: the restart supersedes
        # their replay.  CREATED tasks are abandoned half-built replacements
        # (their recovery proc was cancelled between rebuild and start);
        # they too must be failed so their attached gates release any link
        # pump blocked on their credit queues.
        for vertex in jm.vertices.values():
            task = vertex.task
            if task is not None and task.status in (
                TaskStatus.RUNNING,
                TaskStatus.RECOVERING,
                TaskStatus.CREATED,
            ):
                task.fail()
                jm.cluster.release(vertex.name)
        yield self.env.timeout(self.cost.task_cancel_time)
        jm.trace.emit(
            self.env.now, "phase-mark", "*", phase="checkpoint-restore"
        )
        # Multi-epoch fallback ladder: restore the newest epoch that passes
        # validation for *every* task (mixed-epoch restores are inconsistent,
        # so epoch selection is all-or-nothing).  If a load still trips an
        # integrity check (corruption injected after the metadata probe),
        # exclude that epoch and re-select an older one.
        excluded: set = set()
        while True:
            cid = self._select_restore_epoch(excluded)
            snapshots = {}
            procs = [
                self.env.process(
                    self._prepare_one(vertex, cid, snapshots),
                    name=f"restart:{vertex.name}",
                )
                for vertex in jm.vertices.values()
            ]
            try:
                yield self.env.all_of(procs)
            except IntegrityError as exc:
                jm.recovery_events.append(
                    (self.env.now, "integrity:restore-failed", repr(exc))
                )
                excluded.add(cid)
                continue
            except ReproError as exc:
                # A restart that cannot complete (e.g. the cluster lost too
                # much capacity) must surface as a job failure, not a silent
                # wedge.
                jm.recovery_events.append(
                    (self.env.now, "global-restart-failed", repr(exc))
                )
                jm.crashed.append(("global-restart", exc))
                return
            break
        if cid < jm.completed_checkpoint:
            # The fallback committed to an older epoch: checkpoints newer
            # than it belong to the abandoned timeline.  Rewind the job's
            # checkpoint bookkeeping and drop the newer snapshots, or a
            # later *local* recovery would restore a task from a future the
            # rest of the job rolled back past.
            dropped = jm.snapshot_store.discard_newer_than(cid)
            jm.checkpoints_completed = [
                (c, t) for (c, t) in jm.checkpoints_completed if c <= cid
            ]
            jm.completed_checkpoint = cid
            # Standby images newer than the restored epoch are from the
            # abandoned timeline too: a later standby activation would
            # resurrect state (and channel sequence expectations) the rest
            # of the job no longer has.  Downgrade them to the restored
            # epoch's snapshot.
            for vertex in jm.vertices.values():
                standby = vertex.standby
                if (
                    standby is not None
                    and standby.snapshot is not None
                    and standby.snapshot.checkpoint_id > cid
                ):
                    standby.snapshot = jm.snapshot_store.get(vertex.name, cid)
            jm.recovery_events.append(
                (self.env.now, f"integrity:timeline-rewind:{cid}", f"dropped={dropped}")
            )
        # Attach every rebuilt task to the links before any of them starts:
        # snapshot loads finish at different times, and an upstream that
        # started early would stream into a predecessor's torn-down gate —
        # losing buffers (and advancing determinant-delta cursors past what
        # the late-attaching receiver ever saw).
        jm.trace.emit(self.env.now, "phase-mark", "*", phase="task-restart")
        started = []
        for vertex in jm.vertices.values():
            task = jm._build_task(vertex)
            vertex.task = task
            # A global restart replays without causal determinants, so
            # replayed input can diverge from the original run: count-based
            # external dedup (ExactlyOnceKafkaSink) would turn that
            # divergence into silent loss.  Degraded semantics are
            # at-least-once — sinks drop their dedup state and re-append.
            reset = getattr(task.operator, "reset_external_dedup", None)
            if reset is not None:
                reset()
            started.append((task, snapshots.get(vertex.name)))
        for task, snapshot in started:
            task.start(snapshot)
        jm.dead_tasks.clear()
        jm.recovering_tasks.clear()
        self._restarting = False
        jm.recovery_events.append((self.env.now, "global-restart-done", "*"))
        jm.trace.emit(
            self.env.now, "global-restart-done", "*", epoch=cid
        )

    def _select_restore_epoch(self, excluded=()) -> int:
        """The multi-epoch rung of the fallback ladder.

        Walk the retained completed checkpoints newest-first and pick the
        first whose every stored snapshot passes validation (metadata probe,
        no I/O); falling back past the newest epoch — or all the way to an
        empty restart — is announced as ``degraded:global_rollback`` because
        replaying an older epoch can re-emit output already committed
        externally (at-least-once, not exactly-once).
        """
        jm = self.jm
        latest = jm.completed_checkpoint
        if latest <= 0:
            return 0
        if not jm.integrity.validate:
            return latest if latest not in excluded else 0
        store = jm.snapshot_store
        candidates = sorted(
            {
                cid
                for (_name, cid) in store._snapshots
                if cid <= latest and cid not in excluded
            },
            reverse=True,
        )
        for cid in candidates:
            corrupt = [
                vertex.name
                for vertex in jm.vertices.values()
                if store.get(vertex.name, cid) is not None
                and not store.peek_valid(vertex.name, cid)
            ]
            if not corrupt:
                if cid != latest:
                    jm.recovery_events.append(
                        (self.env.now, f"integrity:epoch-fallback:{latest}->{cid}", "*")
                    )
                    jm.recovery_events.append(
                        (self.env.now, "degraded:global_rollback", "epoch-fallback")
                    )
                return cid
            jm.recovery_events.append(
                (
                    self.env.now,
                    f"integrity:epoch-invalid:{cid}",
                    ",".join(sorted(corrupt)),
                )
            )
        jm.recovery_events.append((self.env.now, "integrity:no-valid-epoch", "*"))
        jm.recovery_events.append(
            (self.env.now, "degraded:global_rollback", "no-valid-epoch")
        )
        return 0

    def _prepare_one(self, vertex, checkpoint_id: int, snapshots: dict):
        yield self.env.timeout(self.cost.task_deploy_time)
        vertex.node_id = self.jm.allocate_task_slot(vertex)
        if checkpoint_id > 0 and self.jm.snapshot_store.get(vertex.name, checkpoint_id):
            snapshots[vertex.name] = yield from self._load_with_retry(
                vertex.name, checkpoint_id
            )


class ClonosCoordinator(BaseCoordinator):
    """The six-step protocol of Section 2.2, per failed task — supervised.

    Failure of an attempt escalates along the ladder: retry locally via the
    standby, then re-provision a fresh deployment from the DFS checkpoint,
    and finally degrade to global-rollback semantics (recorded as
    ``degraded:global_rollback``).
    """

    def __init__(self, jm):
        super().__init__(jm)
        self.fallbacks_to_global = 0
        self.degradations = 0
        self._fallback = GlobalRollbackCoordinator(jm)

    def on_failure_detected(self, task_name: str) -> None:
        if self._fallback._restarting:
            return
        vertex = self.jm.vertices[task_name]
        dsd = self.jm.config.clonos.determinant_sharing_depth
        case = classify_failed_task(
            self.jm.adjacency, set(self.jm.dead_tasks), task_name, dsd
        )
        if case is RecoveryCase.FREE and self._externalized_dependent(task_name):
            # Figure 4 calls this FREE — every dependent failed with it, so
            # a fresh (divergent) execution is consistent *inside* the job.
            # But a failed downstream sink that already externalized output
            # leaves a dependent the analysis cannot see: the external
            # system's stored order (Section 5.5).  Regenerating that
            # sink's input without determinants would silently corrupt its
            # count-based dedup, so treat the task as orphaned instead.
            case = RecoveryCase.ORPHANED
            self.jm.recovery_events.append(
                (self.env.now, "orphan-externalized-output", task_name)
            )
            self.jm.trace.emit(
                self.env.now, "orphan-externalized-output", task_name
            )
        if case is RecoveryCase.ORPHANED:
            if self.jm.config.clonos.fallback_to_global:
                # Figure 4, DSD < D, orphaned leaf: trigger a global rollback
                # (favour consistency, Section 5.4).
                self.fallbacks_to_global += 1
                self.jm.recovery_events.append(
                    (self.env.now, "orphan-fallback", task_name)
                )
                self.jm.trace.emit(self.env.now, "orphan-fallback", task_name)
                self._fallback.on_failure_detected(task_name)
                return
            # Favour availability: recover locally WITHOUT determinants,
            # skipping deduplication — at-least-once (Section 5.4).
            self.jm.recovery_events.append(
                (self.env.now, "orphan-skip-dedup", task_name)
            )
        self.jm.recovering_tasks.add(task_name)
        self._spawn_recovery(vertex, self._supervised_recovery(vertex, case))

    def _externalized_dependent(self, task_name: str) -> bool:
        """Does any *strictly* downstream task hold externalized output?

        The failed task itself is excluded: a sink recovering alone replays
        byte-identically from its (surviving) upstreams plus its own
        externally stored determinant bundle, so its externalized output is
        safe.  Only an upstream regenerating *fresh* invalidates it."""
        jm = self.jm
        for name in transitive_downstream(jm.adjacency, task_name):
            vertex = jm.vertices.get(name)
            task = vertex.task if vertex is not None else None
            operator = getattr(task, "operator", None)
            if getattr(operator, "output_is_externalized", False):
                return True
        return False

    def _supervised_recovery(self, vertex, case: RecoveryCase):
        """The escalation ladder around :meth:`_attempt_recovery`."""
        jm = self.jm
        policy = jm.config.clonos.recovery_retry
        rng = jm.streams.stream(f"recovery-backoff:{vertex.name}")
        attempts = max(1, policy.max_attempts)
        for attempt in range(attempts):
            # Rung 1 uses the standby; later rungs re-provision from the
            # DFS checkpoint with a fresh deployment.
            label = yield from self._attempt_recovery(
                vertex, case, prefer_standby=(attempt == 0)
            )
            if label is None:
                return
            jm.recovery_events.append(
                (self.env.now, f"recovery-retry:{label}", vertex.name)
            )
            jm.trace.emit(
                self.env.now,
                "recovery-retry",
                vertex.name,
                attempt=attempt + 1,
                label=label,
            )
            if label.startswith("checkpoint-restore") and self._latest_epoch_corrupt(
                vertex
            ):
                # The only local restore source is corrupt — retrying cannot
                # fix a bad artifact.  Skip straight to the global fallback,
                # which can select an older validated epoch.
                jm.recovery_events.append(
                    (self.env.now, "integrity:local-restore-unavailable", vertex.name)
                )
                break
            if attempt < attempts - 1:
                yield self.env.timeout(policy.delay(attempt, rng))
        # Rung 3: graceful degradation to global-rollback semantics.
        self.degradations += 1
        jm.recovery_events.append(
            (self.env.now, "degraded:global_rollback", vertex.name)
        )
        jm.trace.emit(
            self.env.now, "degraded", vertex.name, reason="ladder-exhausted"
        )
        jm.recovering_tasks.discard(vertex.name)
        self._fallback.on_failure_detected(vertex.name)

    def _latest_epoch_corrupt(self, vertex) -> bool:
        """Whether the newest completed checkpoint of this task exists but
        fails validation (a metadata probe, no I/O)."""
        jm = self.jm
        cid = jm.completed_checkpoint
        return (
            jm.integrity.validate
            and cid > 0
            and jm.snapshot_store.get(vertex.name, cid) is not None
            and not jm.snapshot_store.peek_valid(vertex.name, cid)
        )

    def _attempt_recovery(self, vertex, case: RecoveryCase, prefer_standby: bool):
        """One pass over the six steps, each under the step deadline.
        Returns None on success, else a label naming the failed step."""
        jm = self.jm
        deadline = jm.config.clonos.recovery_step_deadline
        standby = vertex.standby
        fast_path = prefer_standby and standby is not None and standby.usable
        # Step 1: activate standby / start replacement.
        status, snapshot = yield from self._step(
            vertex.name,
            self._obtain_snapshot(vertex, prefer_standby),
            deadline,
            "standby-activation" if fast_path else "checkpoint-restore",
        )
        if status != "ok":
            jm.cluster.release(vertex.name)
            return status
        restore_epoch = snapshot.checkpoint_id if snapshot is not None else 0
        # Step 2: reconfigure network connections (+ dedup handshake).
        task = self._rebuild_task(vertex, snapshot)
        if jm.config.mode is FaultToleranceMode.CLONOS:
            task.seep_dedup = False
        # Step 3: retrieve the determinant log from downstream tasks.  An
        # orphaned task with fallback disabled skips this (and therefore
        # dedup): divergent replay, at-least-once.
        bundle = None
        if task.causal is not None and case is not RecoveryCase.ORPHANED:
            status, bundle = yield from self._step(
                vertex.name,
                self._fetch_determinants(vertex),
                deadline,
                "determinant-fetch",
            )
            if status != "ok":
                self._dismantle(vertex, task)
                jm.cluster.release(vertex.name)
                return status
        if case is RecoveryCase.ORPHANED:
            for channel in task.all_output_channels:
                channel.suppress_until_seq = -1
        jm.dead_tasks.discard(vertex.name)
        # Steps 5+6 run inside the task: determinant-driven replay with
        # sender-side dedup.  If nothing needs replaying the task reports
        # recovered immediately.
        task.start(snapshot, recovery_bundle=bundle, replay_from_epoch=restore_epoch)
        if task.status is TaskStatus.RUNNING:
            jm.recovering_tasks.discard(vertex.name)
        # Step 4: request in-flight replay from upstream (parallel to 3).
        self._request_replays(vertex, restore_epoch)
        # HA restored: if the standby was consumed by a crash of its own,
        # re-provision a fresh one (hydrated from the DFS checkpoint).
        if jm._uses_standbys() and standby is not None and standby.failed:
            jm.reprovision_standby(vertex)
        return None

    def _fetch_determinants(self, vertex):
        """Collect this task's replicated bundle from every surviving holder
        within the sharing depth, charging RPC + transfer time."""
        jm = self.jm
        dsd = jm.config.clonos.determinant_sharing_depth
        holder_names = downstream_within(jm.adjacency, vertex.name, dsd)
        bundles = []
        total_bytes = 0
        for name in sorted(holder_names):
            holder = jm.vertices[name].task
            if holder is None or holder.status is TaskStatus.FAILED:
                continue
            if holder.causal is None:
                continue
            stored = holder.causal.stored_bundle_for(vertex.name)
            if stored is not None:
                if jm.integrity.validate:
                    # A truncated/corrupt replica cannot be told apart from a
                    # legitimately short prefix, so a holder failing its
                    # checksum fails the step: the ladder degrades rather
                    # than risk divergent replay from partial determinants.
                    try:
                        stored.verify(owner=f"{name}:{vertex.name}")
                    except IntegrityError as exc:
                        jm.integrity.record_failure(
                            exc.artifact, exc.name, str(exc)
                        )
                        jm.recovery_events.append(
                            (self.env.now, "integrity:determinant-log", name)
                        )
                        raise
                    jm.integrity.record_ok("determinant-log")
                bundles.append(stored)
                total_bytes += stored.size_bytes()
        # Sinks have no downstream holder: the external system stores their
        # determinants alongside the output (Section 5.5) and returns them
        # here, so sink replay is byte-identical and count-based output
        # dedup stays sound.
        operator = getattr(jm.vertices[vertex.name].task, "operator", None)
        fetch_external = getattr(operator, "external_determinant_bundle", None)
        if fetch_external is not None:
            stored = fetch_external(vertex.name)
            if stored is not None:
                if jm.integrity.validate:
                    try:
                        stored.verify(owner=f"external:{vertex.name}")
                    except IntegrityError as exc:
                        jm.integrity.record_failure(exc.artifact, exc.name, str(exc))
                        jm.recovery_events.append(
                            (self.env.now, "integrity:determinant-log", vertex.name)
                        )
                        raise
                    jm.integrity.record_ok("determinant-log")
                bundles.append(stored)
                total_bytes += stored.size_bytes()
        yield self.env.timeout(
            2 * self.cost.rpc_latency + self.cost.transmission_time(total_bytes)
        )
        return merge_bundles(bundles)


class LocalReplayCoordinator(BaseCoordinator):
    """Local recovery with upstream backup but no determinants.

    ``seep_dedup=False``: divergent replay, at-least-once (Section 5.4).
    ``seep_dedup=True``: SEEP-style receiver-side dedup by record counts —
    consistent only when operators are deterministic (Table 1).
    """

    def __init__(self, jm, seep_dedup: bool):
        super().__init__(jm)
        self.seep_dedup = seep_dedup

    def on_failure_detected(self, task_name: str) -> None:
        self.jm.recovering_tasks.add(task_name)
        vertex = self.jm.vertices[task_name]
        self._spawn_recovery(vertex, self._recover(vertex))

    def _recover(self, vertex):
        jm = self.jm
        fast_path = vertex.standby is not None and vertex.standby.usable
        jm.trace.emit(
            self.env.now,
            "phase-begin",
            vertex.name,
            phase="standby-activation" if fast_path else "checkpoint-restore",
        )
        try:
            snapshot = yield from self._obtain_snapshot(vertex)
        except RecoveryError:
            # Standby crashed during activation: fall back to a fresh
            # deployment from the DFS checkpoint.
            jm.recovery_events.append(
                (self.env.now, "recovery-retry:standby-activation:error", vertex.name)
            )
            jm.trace.emit(
                self.env.now, "phase-begin", vertex.name, phase="checkpoint-restore"
            )
            snapshot = yield from self._obtain_snapshot(vertex, prefer_standby=False)
        restore_epoch = snapshot.checkpoint_id if snapshot is not None else 0
        task = self._rebuild_task(vertex, snapshot)
        task.seep_dedup = self.seep_dedup
        # No determinants: suppression would misalign with the regenerated
        # (divergent) buffer boundaries, so the sender resends everything.
        for channel in task.all_output_channels:
            channel.suppress_until_seq = -1
        if self.seep_dedup:
            # Arm receiver-side dedup at every surviving direct downstream.
            for _edge, channels in vertex.out_links:
                for _flat_idx, down_name, link in channels:
                    receiver = link.receiver
                    down_task = jm.vertices[down_name].task
                    if (
                        receiver is not None
                        and down_task is not None
                        and down_task.status is not TaskStatus.FAILED
                    ):
                        down_task.enter_seep_dedup(receiver.index, restore_epoch)
        jm.dead_tasks.discard(vertex.name)
        task.start(snapshot)
        jm.recovering_tasks.discard(vertex.name)
        jm.recovery_events.append((self.env.now, "recovered", vertex.name))
        jm.trace.emit(self.env.now, "task-recovered", vertex.name)
        self._request_replays(vertex, restore_epoch)


class GapRecoveryCoordinator(BaseCoordinator):
    """At-most-once: restart from checkpoint, skip everything lost."""

    def on_failure_detected(self, task_name: str) -> None:
        self.jm.recovering_tasks.add(task_name)
        vertex = self.jm.vertices[task_name]
        self._spawn_recovery(vertex, self._recover(vertex))

    def _recover(self, vertex):
        jm = self.jm
        fast_path = vertex.standby is not None and vertex.standby.usable
        jm.trace.emit(
            self.env.now,
            "phase-begin",
            vertex.name,
            phase="standby-activation" if fast_path else "checkpoint-restore",
        )
        try:
            snapshot = yield from self._obtain_snapshot(vertex)
        except RecoveryError:
            jm.recovery_events.append(
                (self.env.now, "recovery-retry:standby-activation:error", vertex.name)
            )
            jm.trace.emit(
                self.env.now, "phase-begin", vertex.name, phase="checkpoint-restore"
            )
            snapshot = yield from self._obtain_snapshot(vertex, prefer_standby=False)
        task = self._rebuild_task(vertex, snapshot)
        # Gap recovery skips the lost data instead of regenerating it, so
        # sequence-number dedup is meaningless: new output is new data.
        for channel in task.all_output_channels:
            channel.suppress_until_seq = -1
        jm.dead_tasks.discard(vertex.name)
        task.start(snapshot)
        if vertex.is_source and isinstance(task.operator, KafkaSource):
            # Jump over the gap: resume from live data, not the checkpoint.
            partition = task.operator.log.partition(
                task.operator.topic, vertex.subtask_index
            )
            task.operator.offset = max(
                task.operator.offset, partition.end_offset(self.env.now)
            )
        jm.recovering_tasks.discard(vertex.name)
        jm.recovery_events.append((self.env.now, "recovered", vertex.name))
        jm.trace.emit(self.env.now, "task-recovered", vertex.name)
