"""Recovery coordinators: one per fault-tolerance scheme.

The job manager delegates detected failures here.  Each coordinator
implements a published recovery strategy:

* :class:`GlobalRollbackCoordinator` — vanilla Flink (Section 3.2): cancel
  the whole graph, restart every task from the last completed checkpoint.
* :class:`ClonosCoordinator` — the paper's protocol (Section 2.2): activate
  a standby, reconfigure the network, retrieve the determinant log from
  downstream, request in-flight replay from upstream, replay with causal
  consistency, deduplicate at the sender.  Falls back to a global rollback
  when the Figure-4 analysis finds an orphan (DSD exceeded).
* :class:`LocalReplayCoordinator` — SEEP/at-least-once style local recovery
  (upstream backup without determinants); with ``seep_dedup`` it adds
  receiver-side count-based deduplication (correct only for deterministic
  operators — Table 1).
* :class:`GapRecoveryCoordinator` — at-most-once gap recovery (Section 5.4):
  restart the failed task from its checkpoint and *skip* lost input.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import FaultToleranceMode
from repro.core.causal_log import merge_bundles
from repro.core.dsd import RecoveryCase, classify_failed_task, downstream_within
from repro.errors import JobError, RecoveryError
from repro.operators.source import KafkaSource
from repro.runtime.task import TaskStatus


def make_coordinator(jm):
    mode = jm.config.mode
    if mode is FaultToleranceMode.GLOBAL_ROLLBACK:
        return GlobalRollbackCoordinator(jm)
    if mode is FaultToleranceMode.CLONOS:
        return ClonosCoordinator(jm)
    if mode in (FaultToleranceMode.DIVERGENT, FaultToleranceMode.SEEP):
        return LocalReplayCoordinator(jm, seep_dedup=mode is FaultToleranceMode.SEEP)
    if mode is FaultToleranceMode.GAP_RECOVERY:
        return GapRecoveryCoordinator(jm)
    if mode is FaultToleranceMode.NONE:
        return NoRecoveryCoordinator(jm)
    raise JobError(f"no coordinator for mode {mode}")


class BaseCoordinator:
    def __init__(self, jm):
        self.jm = jm
        self.env = jm.env
        self.cost = jm.config.cost

    def on_failure_detected(self, task_name: str) -> None:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------------

    def _obtain_snapshot(self, vertex):
        """Generator: standby activation (fast path) or fresh deployment +
        checkpoint restore from the DFS (slow path).  Returns the snapshot
        (or None when no checkpoint completed yet)."""
        standby = vertex.standby
        if standby is not None and standby.snapshot is not None:
            yield self.env.timeout(self.cost.standby_activation_time)
            snapshot = yield from standby.wait_ready()
            self.jm.cluster.allocate(vertex.name)
            return snapshot
        yield self.env.timeout(self.cost.task_deploy_time)
        self.jm.cluster.allocate(vertex.name)
        cid = self.jm.completed_checkpoint
        if cid <= 0 or self.jm.snapshot_store.get(vertex.name, cid) is None:
            return None
        snapshot = yield from self.jm.snapshot_store.load(vertex.name, cid)
        return snapshot

    def _rebuild_task(self, vertex, snapshot):
        """Construct the replacement and perform the network reconfiguration
        handshake (Section 6.2): fresh input channels attach to the existing
        links; surviving receivers report their delivered sequence numbers
        for sender-side dedup."""
        task = self.jm._build_task(vertex)
        vertex.task = task
        for _edge, channels in vertex.out_links:
            for flat_idx, _down, link in channels:
                channel = task.output_channel_by_flat_index(flat_idx)
                receiver = link.receiver
                if receiver is not None:
                    channel.suppress_until_seq = receiver.delivered_seq
        return task

    def _request_replays(self, vertex, from_epoch: int) -> None:
        """Step 4: ask upstream tasks to replay their in-flight logs."""
        for _in_flat, _input_index, upstream_name, _link, up_flat in vertex.in_links:
            upstream = self.jm.vertices[upstream_name].task
            if upstream is None or upstream.status is TaskStatus.FAILED:
                continue  # its own recovery will regenerate and send
            receiver_channel = vertex.task.gate.channels[_in_flat]
            upstream.control.send(
                "replay_request",
                {
                    "flat_channel": up_flat,
                    "from_epoch": from_epoch,
                    "delivered_seq": receiver_channel.delivered_seq,
                    "requester": vertex.name,
                },
                sender=vertex.name,
            )


class NoRecoveryCoordinator(BaseCoordinator):
    def on_failure_detected(self, task_name: str) -> None:
        raise RecoveryError(f"task {task_name} failed and mode=NONE")


class GlobalRollbackCoordinator(BaseCoordinator):
    """Tear everything down, restore the latest global checkpoint."""

    def __init__(self, jm):
        super().__init__(jm)
        self._restarting = False
        self.global_restarts = 0

    def on_failure_detected(self, task_name: str) -> None:
        if self._restarting:
            return  # the ongoing restart covers this failure too
        self._restarting = True
        self.env.process(self._restart_job(), name="global-restart")

    def _restart_job(self):
        jm = self.jm
        jm.abort_pending_checkpoint()
        self.global_restarts += 1
        jm.recovery_events.append((self.env.now, "global-restart-begin", "*"))
        # Cancel every surviving task (they stop processing immediately).
        for vertex in jm.vertices.values():
            task = vertex.task
            if task is not None and task.status is TaskStatus.RUNNING:
                task.fail()
                jm.cluster.release(vertex.name)
        yield self.env.timeout(self.cost.task_cancel_time)
        cid = jm.completed_checkpoint
        procs = [
            self.env.process(self._restart_one(vertex, cid), name=f"restart:{vertex.name}")
            for vertex in jm.vertices.values()
        ]
        yield self.env.all_of(procs)
        jm.dead_tasks.clear()
        self._restarting = False
        jm.recovery_events.append((self.env.now, "global-restart-done", "*"))

    def _restart_one(self, vertex, checkpoint_id: int):
        yield self.env.timeout(self.cost.task_deploy_time)
        self.jm.cluster.allocate(vertex.name)
        snapshot = None
        if checkpoint_id > 0 and self.jm.snapshot_store.get(vertex.name, checkpoint_id):
            snapshot = yield from self.jm.snapshot_store.load(vertex.name, checkpoint_id)
        task = self.jm._build_task(vertex)
        vertex.task = task
        task.start(snapshot)


class ClonosCoordinator(BaseCoordinator):
    """The six-step protocol of Section 2.2, per failed task."""

    def __init__(self, jm):
        super().__init__(jm)
        self.fallbacks_to_global = 0
        self._fallback = GlobalRollbackCoordinator(jm)

    def on_failure_detected(self, task_name: str) -> None:
        if self._fallback._restarting:
            return
        vertex = self.jm.vertices[task_name]
        dsd = self.jm.config.clonos.determinant_sharing_depth
        case = classify_failed_task(
            self.jm.adjacency, set(self.jm.dead_tasks), task_name, dsd
        )
        if case is RecoveryCase.ORPHANED:
            if self.jm.config.clonos.fallback_to_global:
                # Figure 4, DSD < D, orphaned leaf: trigger a global rollback
                # (favour consistency, Section 5.4).
                self.fallbacks_to_global += 1
                self.jm.recovery_events.append(
                    (self.env.now, "orphan-fallback", task_name)
                )
                self._fallback.on_failure_detected(task_name)
                return
            # Favour availability: recover locally WITHOUT determinants,
            # skipping deduplication — at-least-once (Section 5.4).
            self.jm.recovery_events.append(
                (self.env.now, "orphan-skip-dedup", task_name)
            )
        self.jm.recovering_tasks.add(task_name)
        self.env.process(
            self._recover_locally(vertex, case), name=f"recover:{task_name}"
        )

    def _recover_locally(self, vertex, case: RecoveryCase):
        jm = self.jm
        # Step 1: activate standby / start replacement.
        snapshot = yield from self._obtain_snapshot(vertex)
        restore_epoch = snapshot.checkpoint_id if snapshot is not None else 0
        # Step 2: reconfigure network connections (+ dedup handshake).
        task = self._rebuild_task(vertex, snapshot)
        if jm.config.mode is FaultToleranceMode.CLONOS:
            task.seep_dedup = False
        # Step 3: retrieve the determinant log from downstream tasks.  An
        # orphaned task with fallback disabled skips this (and therefore
        # dedup): divergent replay, at-least-once.
        bundle = None
        if task.causal is not None and case is not RecoveryCase.ORPHANED:
            bundle = yield from self._fetch_determinants(vertex)
        if case is RecoveryCase.ORPHANED:
            for channel in task.all_output_channels:
                channel.suppress_until_seq = -1
        jm.dead_tasks.discard(vertex.name)
        # Steps 5+6 run inside the task: determinant-driven replay with
        # sender-side dedup.  If nothing needs replaying the task reports
        # recovered immediately.
        task.start(snapshot, recovery_bundle=bundle, replay_from_epoch=restore_epoch)
        if task.status is TaskStatus.RUNNING:
            jm.recovering_tasks.discard(vertex.name)
        # Step 4: request in-flight replay from upstream (parallel to 3).
        self._request_replays(vertex, restore_epoch)

    def _fetch_determinants(self, vertex):
        """Collect this task's replicated bundle from every surviving holder
        within the sharing depth, charging RPC + transfer time."""
        jm = self.jm
        dsd = jm.config.clonos.determinant_sharing_depth
        holder_names = downstream_within(jm.adjacency, vertex.name, dsd)
        bundles = []
        total_bytes = 0
        for name in sorted(holder_names):
            holder = jm.vertices[name].task
            if holder is None or holder.status is TaskStatus.FAILED:
                continue
            if holder.causal is None:
                continue
            stored = holder.causal.stored_bundle_for(vertex.name)
            if stored is not None:
                bundles.append(stored)
                total_bytes += stored.size_bytes()
        yield self.env.timeout(
            2 * self.cost.rpc_latency + self.cost.transmission_time(total_bytes)
        )
        return merge_bundles(bundles)


class LocalReplayCoordinator(BaseCoordinator):
    """Local recovery with upstream backup but no determinants.

    ``seep_dedup=False``: divergent replay, at-least-once (Section 5.4).
    ``seep_dedup=True``: SEEP-style receiver-side dedup by record counts —
    consistent only when operators are deterministic (Table 1).
    """

    def __init__(self, jm, seep_dedup: bool):
        super().__init__(jm)
        self.seep_dedup = seep_dedup

    def on_failure_detected(self, task_name: str) -> None:
        self.jm.recovering_tasks.add(task_name)
        self.env.process(
            self._recover(self.jm.vertices[task_name]), name=f"recover:{task_name}"
        )

    def _recover(self, vertex):
        jm = self.jm
        snapshot = yield from self._obtain_snapshot(vertex)
        restore_epoch = snapshot.checkpoint_id if snapshot is not None else 0
        task = self._rebuild_task(vertex, snapshot)
        task.seep_dedup = self.seep_dedup
        # No determinants: suppression would misalign with the regenerated
        # (divergent) buffer boundaries, so the sender resends everything.
        for channel in task.all_output_channels:
            channel.suppress_until_seq = -1
        if self.seep_dedup:
            # Arm receiver-side dedup at every surviving direct downstream.
            for _edge, channels in vertex.out_links:
                for _flat_idx, down_name, link in channels:
                    receiver = link.receiver
                    down_task = jm.vertices[down_name].task
                    if (
                        receiver is not None
                        and down_task is not None
                        and down_task.status is not TaskStatus.FAILED
                    ):
                        down_task.enter_seep_dedup(receiver.index, restore_epoch)
        jm.dead_tasks.discard(vertex.name)
        task.start(snapshot)
        jm.recovering_tasks.discard(vertex.name)
        jm.recovery_events.append((self.env.now, "recovered", vertex.name))
        self._request_replays(vertex, restore_epoch)


class GapRecoveryCoordinator(BaseCoordinator):
    """At-most-once: restart from checkpoint, skip everything lost."""

    def on_failure_detected(self, task_name: str) -> None:
        self.jm.recovering_tasks.add(task_name)
        self.env.process(
            self._recover(self.jm.vertices[task_name]), name=f"recover:{task_name}"
        )

    def _recover(self, vertex):
        jm = self.jm
        snapshot = yield from self._obtain_snapshot(vertex)
        task = self._rebuild_task(vertex, snapshot)
        # Gap recovery skips the lost data instead of regenerating it, so
        # sequence-number dedup is meaningless: new output is new data.
        for channel in task.all_output_channels:
            channel.suppress_until_seq = -1
        jm.dead_tasks.discard(vertex.name)
        task.start(snapshot)
        if vertex.is_source and isinstance(task.operator, KafkaSource):
            # Jump over the gap: resume from live data, not the checkpoint.
            partition = task.operator.log.partition(
                task.operator.topic, vertex.subtask_index
            )
            task.operator.offset = max(
                task.operator.offset, partition.end_offset(self.env.now)
            )
        jm.recovering_tasks.discard(vertex.name)
        jm.recovery_events.append((self.env.now, "recovered", vertex.name))
