"""Simulated Kafka: durable, partitioned, offset-addressable logs.

Sources read from topics (and can re-read from any offset — the lineage
anchor of Section 5.1); sinks append to topics.  The metrics layer samples
output topics for throughput and latency exactly as the paper's harness
samples its Kafka cluster (Section 7.1).

Two partition flavours exist:

* :class:`TopicPartition` — materialised entries (sink topics, small test
  inputs).
* :class:`GeneratedTopicPartition` — entries computed on demand from a
  deterministic generator function with a configured arrival rate, so an
  unbounded input stream costs O(1) memory yet is perfectly replayable.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExternalSystemError


class TopicPartition:
    """One partition: an append-only list of (append_time, value) entries."""

    def __init__(self, topic: str, partition: int):
        self.topic = topic
        self.partition = partition
        self.entries: List[Tuple[float, Any]] = []

    def append(self, now: float, value: Any) -> int:
        self.entries.append((now, value))
        return len(self.entries) - 1

    def read(
        self, offset: int, max_count: int, now: float = float("inf")
    ) -> List[Tuple[int, float, Any]]:
        """Entries from ``offset`` whose arrival time is <= ``now``."""
        out = []
        for off in range(offset, min(offset + max_count, len(self.entries))):
            when, value = self.entries[off]
            if when > now:
                break
            out.append((off, when, value))
        return out

    def end_offset(self, now: float = float("inf")) -> int:
        if now == float("inf"):
            return len(self.entries)
        count = 0
        for when, _value in self.entries:
            if when > now:
                break
            count += 1
        return count

    def next_arrival_after(self, offset: int) -> Optional[float]:
        """Arrival time of the entry at ``offset``, or None if beyond end."""
        if offset < len(self.entries):
            return self.entries[offset][0]
        return None

    @property
    def total_offset(self) -> Optional[int]:
        return len(self.entries)


class GeneratedTopicPartition(TopicPartition):
    """A partition whose entries are computed, not stored.

    ``gen_fn(partition, offset) -> value`` must be deterministic; the entry
    at ``offset`` arrives at ``offset / rate`` seconds.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        gen_fn: Callable[[int, int], Any],
        rate: float,
        total: Optional[int] = None,
    ):
        super().__init__(topic, partition)
        if rate <= 0:
            raise ExternalSystemError("generated partition needs a positive rate")
        self.gen_fn = gen_fn
        self.rate = rate
        self.total = total

    def append(self, now: float, value: Any) -> int:
        raise ExternalSystemError("cannot append to a generated partition")

    def _arrival(self, offset: int) -> float:
        return offset / self.rate

    def read(
        self, offset: int, max_count: int, now: float = float("inf")
    ) -> List[Tuple[int, float, Any]]:
        stop = offset + max_count
        end = self.end_offset(now)
        if end < stop:
            stop = end
        if stop <= offset:
            return []
        gen_fn = self.gen_fn
        partition = self.partition
        rate = self.rate
        return [
            (off, off / rate, gen_fn(partition, off)) for off in range(offset, stop)
        ]

    def end_offset(self, now: float = float("inf")) -> int:
        total = self.total
        if now == float("inf"):
            return total if total is not None else 0
        available = int(now * self.rate) + 1
        if total is not None and total < available:
            return total
        return available

    def next_arrival_after(self, offset: int) -> Optional[float]:
        if self.total is not None and offset >= self.total:
            return None
        return self._arrival(offset)

    @property
    def total_offset(self) -> Optional[int]:
        return self.total


class ShapedGeneratedTopicPartition(GeneratedTopicPartition):
    """A generated partition with a piecewise-constant arrival rate.

    ``rate_segments`` is an ascending list of ``(start_time, rate)``
    breakpoints beginning at ``t=0``; the last segment extends forever.
    This is the input-burst primitive of the scenario pack: the *values*
    are the same deterministic ``gen_fn(partition, offset)`` sequence as
    the flat-rate partition, only the arrival times change — so a burst
    reshapes load without touching record identity, and exactly-once
    verdicts remain comparable against a flat-rate baseline.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        gen_fn: Callable[[int, int], Any],
        rate: float,
        total: Optional[int] = None,
        rate_segments: Optional[List[Tuple[float, float]]] = None,
    ):
        super().__init__(topic, partition, gen_fn, rate, total)
        segments = list(rate_segments) if rate_segments else [(0.0, rate)]
        if segments[0][0] != 0.0:
            raise ExternalSystemError("rate segments must start at t=0")
        #: (start_time, start_offset, rate) per segment, ascending.
        self._segments: List[Tuple[float, int, float]] = []
        cum = 0
        for i, (start, seg_rate) in enumerate(segments):
            if seg_rate <= 0:
                raise ExternalSystemError("rate segments need positive rates")
            if i > 0 and start <= segments[i - 1][0]:
                raise ExternalSystemError("rate segments must be ascending in time")
            self._segments.append((start, cum, seg_rate))
            if i + 1 < len(segments):
                span = segments[i + 1][0] - start
                cum += int(round(span * seg_rate))

    def _segment_at_offset(self, offset: int) -> Tuple[float, int, float]:
        chosen = self._segments[0]
        for seg in self._segments:
            if seg[1] <= offset:
                chosen = seg
            else:
                break
        return chosen

    def _arrival(self, offset: int) -> float:
        start, cum, rate = self._segment_at_offset(offset)
        return start + (offset - cum) / rate

    def read(
        self, offset: int, max_count: int, now: float = float("inf")
    ) -> List[Tuple[int, float, Any]]:
        stop = offset + max_count
        end = self.end_offset(now)
        if end < stop:
            stop = end
        if stop <= offset:
            return []
        gen_fn = self.gen_fn
        partition = self.partition
        arrival = self._arrival
        return [
            (off, arrival(off), gen_fn(partition, off)) for off in range(offset, stop)
        ]

    def end_offset(self, now: float = float("inf")) -> int:
        total = self.total
        if now == float("inf"):
            return total if total is not None else 0
        available = 0
        for i, (start, cum, rate) in enumerate(self._segments):
            if start > now:
                break
            available = cum + int((now - start) * rate) + 1
            if i + 1 < len(self._segments):
                # A segment never exposes the next segment's records early,
                # however its span * rate rounds.
                available = min(available, self._segments[i + 1][1])
        if total is not None and total < available:
            return total
        return available

    def next_arrival_after(self, offset: int) -> Optional[float]:
        if self.total is not None and offset >= self.total:
            return None
        return self._arrival(offset)


class DurableLog:
    """A broker holding all topics (a 3-node Kafka cluster stand-in).

    Fault model (mirrors :class:`repro.external.dfs.DistributedFileSystem`):
    an *outage* fails every operation until a simulated instant; a *brownout*
    fails a seeded fraction of operations.  Faults surface as
    :class:`ExternalSystemError` — clients (source poll loops, transactional
    commits) must stall-and-retry without losing or duplicating records.
    """

    def __init__(self):
        self._partitions: Dict[Tuple[str, int], TopicPartition] = {}
        #: Sink determinant bundles stored *in the external system*, keyed by
        #: sink task name (Section 5.5: a sink has no downstream task to hold
        #: its causal log, so the downstream *system* stores it and returns
        #: it on recovery).  Written by ExactlyOnceKafkaSink appends.
        self.sink_bundles: Dict[str, Any] = {}
        #: Every operation before this simulated instant fails.
        self.outage_until = 0.0
        #: Operations before this instant fail with ``brownout_failure_rate``.
        self.brownout_until = 0.0
        self.brownout_failure_rate = 0.0
        self._brownout_rng = random.Random(0)
        #: Operations refused by a fault window (observability for tests/chaos).
        self.failed_ops = 0

    # -- fault injection --------------------------------------------------------

    def set_outage(self, until: float) -> None:
        """Full broker outage until simulated time ``until``."""
        self.outage_until = max(self.outage_until, until)

    def set_brownout(self, until: float, failure_rate: float, seed: int = 0) -> None:
        """Flaky broker until ``until``: each operation fails with
        ``failure_rate`` probability (seeded, so runs are reproducible)."""
        self.brownout_until = max(self.brownout_until, until)
        self.brownout_failure_rate = failure_rate
        self._brownout_rng = random.Random(seed)

    def check_available(self, now: float, op: str = "") -> None:
        """Raise :class:`ExternalSystemError` if the broker refuses ``op`` at
        simulated time ``now`` (outage, or a brownout coin-flip)."""
        if now < self.outage_until:
            self.failed_ops += 1
            raise ExternalSystemError(
                f"broker outage (until t={self.outage_until:g}): {op or 'op'}"
            )
        if (
            now < self.brownout_until
            and self._brownout_rng.random() < self.brownout_failure_rate
        ):
            self.failed_ops += 1
            raise ExternalSystemError(f"broker brownout: {op or 'op'}")

    def retry_at(self, now: float, backoff: float = 0.05) -> float:
        """When a refused client should try again: after the outage window if
        one is active, else a short backoff (brownouts clear per-operation)."""
        if now < self.outage_until:
            return max(self.outage_until, now + backoff)
        return now + backoff

    def create_topic(self, topic: str, partitions: int = 1) -> None:
        if partitions < 1:
            raise ExternalSystemError("topic needs at least one partition")
        for p in range(partitions):
            self._partitions.setdefault((topic, p), TopicPartition(topic, p))

    def create_generated_topic(
        self,
        topic: str,
        partitions: int,
        gen_fn: Callable[[int, int], Any],
        rate_per_partition: float,
        total_per_partition: Optional[int] = None,
    ) -> None:
        """An unbounded (or bounded) input topic backed by a generator."""
        for p in range(partitions):
            self._partitions[(topic, p)] = GeneratedTopicPartition(
                topic, p, gen_fn, rate_per_partition, total_per_partition
            )

    def create_shaped_generated_topic(
        self,
        topic: str,
        partitions: int,
        gen_fn: Callable[[int, int], Any],
        rate_per_partition: float,
        total_per_partition: Optional[int] = None,
        rate_segments: Optional[List[Tuple[float, float]]] = None,
    ) -> None:
        """A generated topic whose arrival rate follows piecewise-constant
        ``rate_segments`` (input bursts); plain generated without them."""
        for p in range(partitions):
            self._partitions[(topic, p)] = ShapedGeneratedTopicPartition(
                topic,
                p,
                gen_fn,
                rate_per_partition,
                total_per_partition,
                rate_segments,
            )

    def partition(self, topic: str, partition: int = 0) -> TopicPartition:
        key = (topic, partition)
        if key not in self._partitions:
            raise ExternalSystemError(f"unknown topic partition {key}")
        return self._partitions[key]

    def partitions_of(self, topic: str) -> List[TopicPartition]:
        parts = [tp for (t, _p), tp in sorted(self._partitions.items()) if t == topic]
        if not parts:
            raise ExternalSystemError(f"unknown topic {topic!r}")
        return parts

    def append(self, topic: str, partition: int, now: float, value: Any) -> int:
        self.check_available(now, f"append {topic}/{partition}")
        return self.partition(topic, partition).append(now, value)

    def topic_size(self, topic: str) -> int:
        return sum(len(tp.entries) for tp in self.partitions_of(topic))

    def read_all(self, topic: str) -> List[Any]:
        """All values across partitions, in per-partition order."""
        out: List[Any] = []
        for tp in self.partitions_of(topic):
            out.extend(value for (_when, value) in tp.entries)
        return out

    def read_all_with_times(self, topic: str) -> List[Tuple[float, Any]]:
        out: List[Tuple[float, Any]] = []
        for tp in self.partitions_of(topic):
            out.extend(tp.entries)
        return out
