"""Simulated external systems: Kafka-like logs, DFS, external services."""

from repro.external.dfs import DistributedFileSystem
from repro.external.http import ExternalService, TransactionalSinkService
from repro.external.kafka import DurableLog, TopicPartition

__all__ = [
    "DistributedFileSystem",
    "DurableLog",
    "ExternalService",
    "TopicPartition",
    "TransactionalSinkService",
]
