"""A simulated external service with *time-varying* answers.

This is the honest stand-in for "a call to an external database that queries
the current stock price" (Section 4.1): the response depends on the
simulated wall-clock time of the call, so re-executing the same UDF call
after a failure returns a *different* answer — unless Clonos' HTTP causal
service replays the logged response.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


class ExternalService:
    """A key-value HTTP-ish service whose values drift over time."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        name: str = "svc",
        latency: float = 1e-3,
        drift_period: float = 0.05,
    ):
        self.env = env
        self.name = name
        self.latency = latency
        self.drift_period = drift_period
        self._rng = streams.stream(f"external-service:{name}")
        self._base: Dict[str, float] = {}
        self.calls = 0
        # -- chaos state (set by repro.chaos) ---------------------------------
        #: Until this instant, calls error with probability ``fault_error_rate``
        #: and successful calls are slowed by ``fault_timeout_factor``.
        self.fault_until = 0.0
        self.fault_error_rate = 0.0
        self.fault_timeout_factor = 1.0
        self._fault_rng = None
        self.errors_injected = 0

    def set_faults(
        self,
        until: float,
        error_rate: float = 0.0,
        timeout_factor: float = 1.0,
        rng=None,
    ) -> None:
        """Open a fault window: until ``until``, ``get`` raises
        :class:`ExternalSystemError` with probability ``error_rate`` and
        slows successful responses by ``timeout_factor``."""
        self.fault_until = max(self.fault_until, until)
        self.fault_error_rate = error_rate
        self.fault_timeout_factor = timeout_factor
        self._fault_rng = rng if rng is not None else self._rng

    def _value_at(self, key: str, now: float) -> float:
        """Deterministic function of (key, time bucket): reproducible for
        tests, yet different when queried at a different time."""
        if key not in self._base:
            self._base[key] = 100.0 + self._rng.random() * 50.0
        bucket = int(now / self.drift_period)
        wobble = ((hash((key, bucket)) % 1000) / 1000.0 - 0.5) * 10.0
        return round(self._base[key] + wobble, 4)

    def get(self, key: str):
        """Generator: performs the call, charging network latency; returns
        the response value.  During a chaos fault window the call may raise
        :class:`~repro.errors.ExternalSystemError` or respond slowly."""
        latency = self.latency
        faulty = self.env.now < self.fault_until
        if faulty:
            latency *= self.fault_timeout_factor
        yield self.env.timeout(latency)
        self.calls += 1
        if faulty and self._fault_rng is not None \
                and self._fault_rng.random() < self.fault_error_rate:
            from repro.errors import ExternalSystemError

            self.errors_injected += 1
            raise ExternalSystemError(f"{self.name}: injected error for {key!r}")
        return self._value_at(key, self.env.now)

    def get_now(self, key: str) -> float:
        """Zero-latency variant for tests."""
        self.calls += 1
        return self._value_at(key, self.env.now)


class TransactionalSinkService:
    """External system for the exactly-once-output extension (Section 5.5).

    Stores records *and* the piggybacked determinants; on request it returns
    the stored determinants so a recovering sink can deduplicate without a
    two-phase commit.
    """

    def __init__(self):
        self.records: list = []
        self.determinants: Dict[int, list] = {}

    def append(self, epoch: int, value: Any, determinant: Any = None) -> None:
        self.records.append(value)
        if determinant is not None:
            self.determinants.setdefault(epoch, []).append(determinant)

    def determinants_for(self, epoch: int) -> list:
        return list(self.determinants.get(epoch, []))

    def truncate_before(self, epoch: int) -> None:
        for old in [e for e in self.determinants if e < epoch]:
            del self.determinants[old]
