"""Simulated distributed file system (HDFS stand-in).

Checkpoints and state-snapshot dispatch go through here; operations charge
simulated time proportional to size with a shared-bandwidth approximation
(concurrent writers halve each other's throughput via a token resource).
"""

from __future__ import annotations

from typing import Dict

from repro.config import CostModel
from repro.errors import ExternalSystemError
from repro.sim.core import Environment
from repro.sim.queues import Resource


class DistributedFileSystem:
    """A name-addressed blob store with simulated I/O costs."""

    def __init__(self, env: Environment, cost: CostModel, write_slots: int = 6):
        self.env = env
        self.cost = cost
        self._blobs: Dict[str, int] = {}
        #: Concurrency limit on the datanode write path; contention under a
        #: global restart (all tasks restoring at once) is what makes Flink's
        #: recovery slow at scale.
        self._io_slots = Resource(env, write_slots)
        self.bytes_written = 0
        self.bytes_read = 0
        # -- chaos state (set by repro.chaos) ---------------------------------
        #: Operations before this instant fail with ExternalSystemError.
        self.outage_until = 0.0
        #: Operations before this instant are slowed by ``brownout_factor``.
        self.brownout_until = 0.0
        self.brownout_factor = 1.0
        self.failed_ops = 0

    def set_outage(self, until: float) -> None:
        """Full DFS outage until simulated time ``until``."""
        self.outage_until = max(self.outage_until, until)

    def set_brownout(self, until: float, factor: float) -> None:
        """Degraded DFS (all I/O ``factor`` times slower) until ``until``."""
        self.brownout_until = max(self.brownout_until, until)
        self.brownout_factor = factor

    def _check_outage(self) -> None:
        if self.env.now < self.outage_until:
            self.failed_ops += 1
            raise ExternalSystemError(
                f"dfs outage (until t={self.outage_until:g})"
            )

    def _degraded(self, seconds: float) -> float:
        if self.env.now < self.brownout_until:
            return seconds * self.brownout_factor
        return seconds

    def write(self, path: str, size_bytes: int):
        """Generator: persist ``size_bytes`` under ``path``."""
        if size_bytes < 0:
            raise ExternalSystemError("negative write size")
        self._check_outage()
        yield self._io_slots.acquire()
        try:
            self._check_outage()
            yield self.env.timeout(self._degraded(self.cost.dfs_write_time(size_bytes)))
            self._check_outage()
            self._blobs[path] = size_bytes
            self.bytes_written += size_bytes
        finally:
            self._io_slots.release()

    def read(self, path: str, size_bytes: int = None):
        """Generator: read a blob back (size defaults to what was written)."""
        if path not in self._blobs:
            raise ExternalSystemError(f"no blob at {path!r}")
        self._check_outage()
        nbytes = self._blobs[path] if size_bytes is None else size_bytes
        yield self._io_slots.acquire()
        try:
            self._check_outage()
            yield self.env.timeout(self._degraded(self.cost.dfs_read_time(nbytes)))
            self._check_outage()
            self.bytes_read += nbytes
        finally:
            self._io_slots.release()
        return nbytes

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def delete(self, path: str) -> None:
        self._blobs.pop(path, None)
