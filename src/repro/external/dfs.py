"""Simulated distributed file system (HDFS stand-in).

Checkpoints and state-snapshot dispatch go through here; operations charge
simulated time proportional to size with a shared-bandwidth approximation
(concurrent writers halve each other's throughput via a token resource).

Each blob carries two content fingerprints: the CRC the writer *declared*
and the CRC of what the datanodes actually *hold*.  They start equal; the
chaos engine's silent-corruption and torn-write faults drive them apart (or
mark the blob torn), and a validating read detects the mismatch with a
structured :class:`~repro.errors.IntegrityError` — the simulation's version
of checksummed HDFS blocks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import CostModel
from repro.errors import ExternalSystemError, IntegrityError
from repro.sim.core import Environment
from repro.sim.queues import Resource


class BlobRecord:
    """One stored blob: size plus integrity metadata."""

    __slots__ = ("size_bytes", "declared_crc", "content_crc", "torn")

    def __init__(self, size_bytes: int, crc: Optional[int] = None):
        self.size_bytes = size_bytes
        #: Fingerprint the writer recorded next to the blob (None = legacy
        #: unfingerprinted write; validation is skipped for those).
        self.declared_crc = crc
        #: Fingerprint of the bytes actually held; chaos mutates this one.
        self.content_crc = crc
        #: True when a write was torn mid-flight: the blob exists in the
        #: namespace but its tail is garbage.
        self.torn = False

    @property
    def intact(self) -> bool:
        return not self.torn and self.declared_crc == self.content_crc

    def __repr__(self) -> str:
        flag = " TORN" if self.torn else ""
        return f"BlobRecord({self.size_bytes}B, crc={self.content_crc}{flag})"


class DistributedFileSystem:
    """A name-addressed blob store with simulated I/O costs."""

    def __init__(self, env: Environment, cost: CostModel, write_slots: int = 6):
        self.env = env
        self.cost = cost
        self._blobs: Dict[str, BlobRecord] = {}
        #: Concurrency limit on the datanode write path; contention under a
        #: global restart (all tasks restoring at once) is what makes Flink's
        #: recovery slow at scale.
        self._io_slots = Resource(env, write_slots)
        self.bytes_written = 0
        self.bytes_read = 0
        # -- chaos state (set by repro.chaos) ---------------------------------
        #: Operations before this instant fail with ExternalSystemError.
        self.outage_until = 0.0
        #: Operations before this instant are slowed by ``brownout_factor``.
        self.brownout_until = 0.0
        self.brownout_factor = 1.0
        self.failed_ops = 0

    def set_outage(self, until: float) -> None:
        """Full DFS outage until simulated time ``until``."""
        self.outage_until = max(self.outage_until, until)

    def set_brownout(self, until: float, factor: float) -> None:
        """Degraded DFS (all I/O ``factor`` times slower) until ``until``."""
        self.brownout_until = max(self.brownout_until, until)
        self.brownout_factor = factor

    def _check_outage(self) -> None:
        if self.env.now < self.outage_until:
            self.failed_ops += 1
            raise ExternalSystemError(
                f"dfs outage (until t={self.outage_until:g})"
            )

    def _degraded(self, seconds: float) -> float:
        """Wall time for ``seconds`` of nominal I/O, brownout-aware.

        Piecewise: work started inside the brownout window runs at
        ``brownout_factor`` until the window closes, then at full speed —
        so an operation that merely *straddles* the brownout edge is not
        charged the degraded rate for its whole duration.
        """
        window = self.brownout_until - self.env.now
        if window <= 0 or self.brownout_factor <= 1.0:
            return seconds
        degraded = seconds * self.brownout_factor
        if degraded <= window:
            return degraded  # finishes entirely inside the brownout
        # Work done while degraded, then the remainder at full speed.
        work_in_window = window / self.brownout_factor
        return window + (seconds - work_in_window)

    def write(self, path: str, size_bytes: int, crc: Optional[int] = None):
        """Generator: persist ``size_bytes`` under ``path``.

        ``crc`` is the writer's content fingerprint, stored alongside the
        blob for validation on read (and by ``repro audit``).
        """
        if size_bytes < 0:
            raise ExternalSystemError("negative write size")
        self._check_outage()
        yield self._io_slots.acquire()
        try:
            self._check_outage()
            yield self.env.timeout(self._degraded(self.cost.dfs_write_time(size_bytes)))
            self._check_outage()
            self._blobs[path] = BlobRecord(size_bytes, crc)
            self.bytes_written += size_bytes
        finally:
            self._io_slots.release()

    def read(self, path: str, size_bytes: int = None, validate: bool = False):
        """Generator: read a blob back (size defaults to what was written).

        With ``validate=True`` the read checks the blob's integrity metadata
        *after* paying the I/O time (a reader must fetch the bytes before it
        can checksum them) and raises :class:`IntegrityError` on a torn blob
        or a declared/content fingerprint mismatch.
        """
        record = self._blobs.get(path)
        if record is None:
            raise ExternalSystemError(f"no blob at {path!r}")
        self._check_outage()
        nbytes = record.size_bytes if size_bytes is None else size_bytes
        yield self._io_slots.acquire()
        try:
            self._check_outage()
            yield self.env.timeout(self._degraded(self.cost.dfs_read_time(nbytes)))
            self._check_outage()
            self.bytes_read += nbytes
        finally:
            self._io_slots.release()
        if validate:
            self.verify_blob(path)
        return nbytes

    def verify_blob(self, path: str) -> None:
        """Check a blob's integrity metadata (no I/O time; the caller either
        just paid for the read or is the audit sweep, which is free)."""
        record = self._blobs.get(path)
        if record is None:
            raise ExternalSystemError(f"no blob at {path!r}")
        if record.torn:
            raise IntegrityError("blob", path, detail="torn write (truncated tail)")
        if record.declared_crc is not None and record.declared_crc != record.content_crc:
            raise IntegrityError(
                "blob", path, expected=record.declared_crc, actual=record.content_crc
            )

    def blob_record(self, path: str) -> Optional[BlobRecord]:
        return self._blobs.get(path)

    def blob_count(self) -> int:
        return len(self._blobs)

    def paths(self):
        return list(self._blobs)

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def delete(self, path: str) -> None:
        self._blobs.pop(path, None)
