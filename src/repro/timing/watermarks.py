"""Watermarks: generation at sources, tracking across input channels.

Low-watermarks are generated at sources *according to wall-clock time*
(Section 4.1), making them nondeterministic; Clonos logs their emission
offset at the source.  Downstream, a task's watermark is the minimum across
its input channels — deterministic given the inputs, so no logging is needed
past the source.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class WatermarkTracker:
    """Min-across-channels watermark state of one task."""

    def __init__(self, num_channels: int):
        self._channel_watermarks: List[float] = [float("-inf")] * max(1, num_channels)
        self.current = float("-inf")

    def update(self, channel_index: int, watermark_ts: float) -> Optional[float]:
        """Record a watermark from one channel; returns the new combined
        watermark if it advanced, else None."""
        if watermark_ts < self._channel_watermarks[channel_index]:
            return None  # late watermark: ignore (FIFO makes this impossible
            # in normal operation, but replay joins mid-stream)
        self._channel_watermarks[channel_index] = watermark_ts
        combined = min(self._channel_watermarks)
        if combined > self.current:
            self.current = combined
            return combined
        return None

    def snapshot(self) -> Dict[str, object]:
        return {"channels": list(self._channel_watermarks), "current": self.current}

    def restore(self, state: Dict[str, object]) -> None:
        channels = list(state["channels"])
        if len(channels) != len(self._channel_watermarks):
            # Parallelism never changes across recovery in this model.
            raise ValueError("channel count changed across restore")
        self._channel_watermarks = channels
        self.current = state["current"]


class SourceWatermarkGenerator:
    """Bounded-out-of-orderness watermark generation at a source.

    The watermark is ``max_event_time_seen - lateness``; *when* it is
    emitted relative to the record stream is decided by a wall-clock
    interval — the nondeterministic part that gets logged.
    """

    def __init__(self, lateness: float, interval: float):
        self.lateness = lateness
        self.interval = interval
        self.max_event_time = float("-inf")
        self.last_emitted = float("-inf")

    def observe(self, event_time: float) -> None:
        if event_time > self.max_event_time:
            self.max_event_time = event_time

    def next_watermark(self) -> Optional[float]:
        """The watermark to emit now, or None if it would not advance."""
        candidate = self.max_event_time - self.lateness
        if candidate > self.last_emitted:
            self.last_emitted = candidate
            return candidate
        return None

    def snapshot(self) -> Dict[str, float]:
        return {"max": self.max_event_time, "emitted": self.last_emitted}

    def restore(self, state: Dict[str, float]) -> None:
        self.max_event_time = state["max"]
        self.last_emitted = state["emitted"]
