"""Time: timers, watermarks, and window primitives."""

from repro.timing.timers import Timer, TimerService
from repro.timing.watermarks import SourceWatermarkGenerator, WatermarkTracker

__all__ = [
    "SourceWatermarkGenerator",
    "Timer",
    "TimerService",
    "WatermarkTracker",
]
