"""Timer service: processing-time and event-time timers.

Processing-time timers are *nondeterministic* (Section 4.1): the instant a
timer fires relative to the record stream depends on wall-clock scheduling.
Clonos therefore assigns every timer a unique id and logs a ``TimerFired``
determinant carrying the stream offset at which it interleaved; on recovery
the timer is re-fired at exactly that offset (Section 4.2).

Event-time timers fire on watermark advance, which is deterministic *given
the watermarks* — and the watermarks themselves are logged at their
nondeterministic origin (the sources).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import StateError
from repro.sim.core import Environment
from repro.sim.queues import Signal


class Timer:
    """One registered timer."""

    __slots__ = ("timer_id", "key", "namespace", "fire_time", "payload", "is_event_time")

    def __init__(
        self,
        timer_id: str,
        key: Any,
        namespace: str,
        fire_time: float,
        payload: Any,
        is_event_time: bool,
    ):
        self.timer_id = timer_id
        self.key = key
        self.namespace = namespace
        self.fire_time = fire_time
        self.payload = payload
        self.is_event_time = is_event_time

    def to_state(self) -> tuple:
        return (
            self.timer_id,
            self.key,
            self.namespace,
            self.fire_time,
            self.payload,
            self.is_event_time,
        )

    @staticmethod
    def from_state(state: tuple) -> "Timer":
        return Timer(*state)

    def __repr__(self) -> str:
        kind = "event" if self.is_event_time else "proc"
        return f"Timer({self.timer_id}, {kind}@{self.fire_time}, key={self.key!r})"


class TimerService:
    """Per-task timer bookkeeping.

    Due processing-time timers are queued and the ``due_signal`` pulsed; the
    task's mailbox loop drains them between buffers — the interleaving point
    is where the nondeterminism lives.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.due_signal = Signal(env)
        self._due: List[Timer] = []
        self._proc_timers: Dict[str, Timer] = {}
        self._event_heap: List[Tuple[float, int, Timer]] = []
        self._event_timers: Dict[str, Timer] = {}
        self._seq = 0
        #: While True (recovery replay), processing timers are parked instead
        #: of armed; :meth:`arm_parked` schedules them when replay ends.
        self.suspended = False
        self._parked: List[Timer] = []

    # -- registration ----------------------------------------------------------

    def new_timer_id(self, namespace: str) -> str:
        self._seq += 1
        return f"{namespace}#{self._seq}"

    def register_processing_timer(
        self, fire_time: float, key: Any, namespace: str, payload: Any = None,
        timer_id: Optional[str] = None,
    ) -> Timer:
        timer = Timer(
            timer_id or self.new_timer_id(namespace),
            key, namespace, fire_time, payload, is_event_time=False,
        )
        if timer.timer_id in self._proc_timers:
            return self._proc_timers[timer.timer_id]  # idempotent re-register
        self._proc_timers[timer.timer_id] = timer
        if self.suspended:
            self._parked.append(timer)
        else:
            self._arm(timer)
        return timer

    def register_event_timer(
        self, fire_time: float, key: Any, namespace: str, payload: Any = None,
        timer_id: Optional[str] = None,
    ) -> Timer:
        timer = Timer(
            timer_id or self.new_timer_id(namespace),
            key, namespace, fire_time, payload, is_event_time=True,
        )
        if timer.timer_id in self._event_timers:
            return self._event_timers[timer.timer_id]
        self._event_timers[timer.timer_id] = timer
        self._seq += 1
        heapq.heappush(self._event_heap, (fire_time, self._seq, timer))
        return timer

    def cancel(self, timer_id: str) -> None:
        self._proc_timers.pop(timer_id, None)
        self._event_timers.pop(timer_id, None)

    def _arm(self, timer: Timer) -> None:
        delay = max(0.0, timer.fire_time - self.env.now)
        self.env.schedule_callback(delay, lambda t=timer: self._on_armed_fire(t))

    def _on_armed_fire(self, timer: Timer) -> None:
        if timer.timer_id not in self._proc_timers:
            return  # cancelled or already fired via determinant replay
        del self._proc_timers[timer.timer_id]
        self._due.append(timer)
        self.due_signal.pulse()

    # -- consumption by the task loop ----------------------------------------

    def has_due(self) -> bool:
        return bool(self._due)

    def pop_due(self) -> Timer:
        if not self._due:
            raise StateError("no due timer")
        return self._due.pop(0)

    def force_fire(self, timer_id: str) -> Optional[Timer]:
        """Recovery: fire a specific processing timer now (determinant
        replay), regardless of its wall-clock fire time."""
        timer = self._proc_timers.pop(timer_id, None)
        if timer is not None:
            self._parked = [t for t in self._parked if t.timer_id != timer_id]
        return timer

    def advance_watermark(self, watermark_ts: float) -> List[Timer]:
        """Pop and return all event-time timers due at this watermark."""
        fired = []
        while self._event_heap and self._event_heap[0][0] <= watermark_ts:
            _ts, _seq, timer = heapq.heappop(self._event_heap)
            if timer.timer_id in self._event_timers:
                del self._event_timers[timer.timer_id]
                fired.append(timer)
        return fired

    # -- recovery lifecycle -----------------------------------------------------

    def suspend(self) -> None:
        self.suspended = True

    def arm_parked(self) -> None:
        """End of recovery: arm surviving parked/restored processing timers;
        overdue ones fire immediately."""
        self.suspended = False
        parked, self._parked = self._parked, []
        for timer in parked:
            if timer.timer_id in self._proc_timers:
                self._arm(timer)

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "proc": [t.to_state() for t in self._proc_timers.values()],
            "event": [t.to_state() for t in self._event_timers.values()],
            "seq": self._seq,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._due.clear()
        self._proc_timers.clear()
        self._event_timers.clear()
        self._event_heap.clear()
        self._parked.clear()
        self._seq = state["seq"]
        order = 0
        for t_state in state["event"]:
            timer = Timer.from_state(tuple(t_state))
            self._event_timers[timer.timer_id] = timer
            order += 1
            heapq.heappush(self._event_heap, (timer.fire_time, order, timer))
        for t_state in state["proc"]:
            timer = Timer.from_state(tuple(t_state))
            self._proc_timers[timer.timer_id] = timer
            self._parked.append(timer)
        # Caller decides when to arm the parked timers (after replay).
        self.suspended = True
