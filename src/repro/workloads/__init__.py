"""Synthetic workloads for the configurable failure experiments."""

from repro.workloads.synthetic import StatefulStageOperator, synthetic_chain

__all__ = ["StatefulStageOperator", "synthetic_chain"]
