"""The synthetic workload of Section 7.2/7.4.

A keyed chain of configurable depth and parallelism with per-operator state,
used for the multiple/concurrent-failure experiments (Figures 6c/6d/6g/6h):
"parallelism 5, operator graph depth 5, checkpoint interval 5 seconds,
per-operator state size of 100 MB" — scaled down ~1000x here, like the rest
of the simulation.

Because every stage is keyed (shuffle connections), failures upstream leave
*causally unaffected paths* flowing, which is exactly the partial-throughput
behaviour the paper highlights.
"""

from __future__ import annotations

from typing import Optional

from repro.core.output import ExactlyOnceKafkaSink
from repro.external.kafka import DurableLog
from repro.graph.elements import StreamRecord
from repro.graph.logical import JobGraph, JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, Operator
from repro.operators.base import Context
from repro.state.backend import ValueStateDescriptor


class StatefulStageOperator(Operator):
    """One pipeline stage holding ``state_bytes`` of keyed state.

    With ``nondeterministic=True`` every record is stamped via the
    (causal) Timestamp service, making the stage's output depend on the
    wall clock.
    """

    def __init__(
        self,
        stage_index: int,
        num_keys: int = 64,
        state_bytes: int = 65536,
        nondeterministic: bool = False,
    ):
        self.stage_index = stage_index
        self.num_keys = num_keys
        self.blob = "x" * max(1, state_bytes // num_keys)
        self.nondeterministic = nondeterministic
        self._state = ValueStateDescriptor(f"stage{stage_index}", default=None)
        self.deterministic = not nondeterministic

    def process(self, record: StreamRecord, ctx: Context) -> None:
        state = ctx.state(self._state)
        entry = state.value()
        count = entry[0] + 1 if entry else 1
        state.update((count, self.blob))
        value = record.value
        if self.nondeterministic:
            stamp = ctx.processing_time()
            ctx.collect((value[0], value[1], self.stage_index, stamp))
        else:
            ctx.collect((value[0], value[1], self.stage_index, count))


def synthetic_chain(
    log: DurableLog,
    depth: int = 5,
    parallelism: int = 5,
    rate_per_partition: float = 500.0,
    total_per_partition: Optional[int] = None,
    state_bytes_per_task: int = 65536,
    num_keys: int = 64,
    nondeterministic: bool = False,
    in_topic: str = "synthetic-in",
    out_topic: str = "synthetic-out",
    exactly_once_sink: bool = False,
) -> JobGraph:
    """Build the chain source -> stage1 -> ... -> stage<depth-1> -> sink,
    keyed (shuffled) between consecutive stages.

    ``exactly_once_sink`` swaps the plain :class:`KafkaSink` for the
    Section 5.5 determinant-piggyback sink, so replaying the sink task
    itself does not duplicate output (requires causal recovery)."""
    if (in_topic, 0) not in log._partitions:
        log.create_generated_topic(
            in_topic,
            parallelism,
            lambda p, off: (p, off),
            rate_per_partition,
            total_per_partition,
        )
    if (out_topic, 0) not in log._partitions:
        log.create_topic(out_topic, parallelism)
    builder = JobGraphBuilder(f"synthetic-d{depth}-p{parallelism}")
    stream = builder.source(
        "src", lambda: KafkaSource(log, in_topic), parallelism=parallelism
    )
    for stage in range(1, max(2, depth)):
        stream = stream.key_by(lambda v, s=stage: (v[0] * 31 + v[1] + s) % num_keys).process(
            f"stage{stage}",
            lambda s=stage: StatefulStageOperator(
                s, num_keys, state_bytes_per_task, nondeterministic
            ),
        )
    if exactly_once_sink:
        stream.key_by(lambda v: v[1] % parallelism).sink(
            "sink", lambda: ExactlyOnceKafkaSink(log, out_topic)
        )
    else:
        stream.key_by(lambda v: v[1] % parallelism).sink(
            "sink", lambda: KafkaSink(log, out_topic)
        )
    return builder.build()
