"""The synthetic workload of Section 7.2/7.4.

A keyed chain of configurable depth and parallelism with per-operator state,
used for the multiple/concurrent-failure experiments (Figures 6c/6d/6g/6h):
"parallelism 5, operator graph depth 5, checkpoint interval 5 seconds,
per-operator state size of 100 MB" — scaled down ~1000x here, like the rest
of the simulation.

Because every stage is keyed (shuffle connections), failures upstream leave
*causally unaffected paths* flowing, which is exactly the partial-throughput
behaviour the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.output import ExactlyOnceKafkaSink
from repro.errors import ScenarioError
from repro.external.kafka import DurableLog
from repro.graph.elements import StreamRecord
from repro.graph.logical import JobGraph, JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, Operator
from repro.operators.base import Context
from repro.state.backend import ValueStateDescriptor


@dataclass(frozen=True)
class InputBurst:
    """The input rate is multiplied by ``factor`` during
    ``[start, start + duration)`` — a backpressure-storm primitive.

    Record *identity* is untouched: the same ``(partition, offset)``
    sequence arrives, only earlier/later, so exactly-once verdicts stay
    comparable against a flat-rate baseline."""

    start: float
    duration: float
    factor: float

    def validate(self) -> None:
        if self.start < 0:
            raise ScenarioError("input burst: start must be >= 0")
        if self.duration <= 0:
            raise ScenarioError("input burst: duration must be > 0")
        if self.factor <= 0:
            raise ScenarioError("input burst: factor must be > 0")


@dataclass(frozen=True)
class HotKeySkew:
    """Route a deterministic ``fraction`` of the records whose offsets fall
    in ``[start_offset, end_offset)`` to one hot key — the hot-key-skew
    primitive.  Selection is pure arithmetic on the record's origin
    ``(partition, offset)``, so the same records are hot on every run and
    every incarnation (no RNG in the record path)."""

    start_offset: int
    end_offset: int
    fraction: float
    hot_key: int = 0

    def validate(self) -> None:
        if self.start_offset < 0 or self.end_offset <= self.start_offset:
            raise ScenarioError("hot-key skew: need 0 <= start_offset < end_offset")
        if not 0.0 < self.fraction <= 1.0:
            raise ScenarioError("hot-key skew: fraction must be in (0, 1]")
        if self.hot_key < 0:
            raise ScenarioError("hot-key skew: hot_key must be >= 0")

    def is_hot(self, partition: int, offset: int) -> bool:
        if not self.start_offset <= offset < self.end_offset:
            return False
        # Knuth-style multiplicative hash — deterministic, seedless, cheap.
        return ((partition * 8191 + offset) * 2654435761) % 1000 < int(
            self.fraction * 1000
        )


@dataclass(frozen=True)
class WorkloadShaping:
    """Everything a scenario may reshape about the synthetic workload."""

    bursts: Tuple[InputBurst, ...] = ()
    hot_keys: Optional[HotKeySkew] = None

    def validate(self) -> None:
        for burst in self.bursts:
            burst.validate()
        if self.hot_keys is not None:
            self.hot_keys.validate()

    @property
    def active(self) -> bool:
        return bool(self.bursts) or self.hot_keys is not None


def rate_segments_for(
    base_rate: float, bursts: Tuple[InputBurst, ...]
) -> Optional[List[Tuple[float, float]]]:
    """Piecewise-constant ``(start_time, rate)`` breakpoints realizing the
    bursts over a flat ``base_rate``; None when there are no bursts (the
    caller then uses the plain generated topic — byte-identical to the
    pre-shaping path)."""
    if not bursts:
        return None
    segments: List[Tuple[float, float]] = []
    cursor = 0.0
    for burst in sorted(bursts, key=lambda b: b.start):
        burst.validate()
        if burst.start < cursor:
            raise ScenarioError("input bursts must not overlap")
        if burst.start > cursor:
            segments.append((cursor, base_rate))
        segments.append((burst.start, base_rate * burst.factor))
        cursor = burst.start + burst.duration
    segments.append((cursor, base_rate))
    return segments


class StatefulStageOperator(Operator):
    """One pipeline stage holding ``state_bytes`` of keyed state.

    With ``nondeterministic=True`` every record is stamped via the
    (causal) Timestamp service, making the stage's output depend on the
    wall clock.
    """

    def __init__(
        self,
        stage_index: int,
        num_keys: int = 64,
        state_bytes: int = 65536,
        nondeterministic: bool = False,
    ):
        self.stage_index = stage_index
        self.num_keys = num_keys
        self.blob = "x" * max(1, state_bytes // num_keys)
        self.nondeterministic = nondeterministic
        self._state = ValueStateDescriptor(f"stage{stage_index}", default=None)
        self.deterministic = not nondeterministic

    def process(self, record: StreamRecord, ctx: Context) -> None:
        state = ctx.state(self._state)
        entry = state.value()
        count = entry[0] + 1 if entry else 1
        state.update((count, self.blob))
        value = record.value
        if self.nondeterministic:
            stamp = ctx.processing_time()
            ctx.collect((value[0], value[1], self.stage_index, stamp))
        else:
            ctx.collect((value[0], value[1], self.stage_index, count))


def synthetic_chain(
    log: DurableLog,
    depth: int = 5,
    parallelism: int = 5,
    rate_per_partition: float = 500.0,
    total_per_partition: Optional[int] = None,
    state_bytes_per_task: int = 65536,
    num_keys: int = 64,
    nondeterministic: bool = False,
    in_topic: str = "synthetic-in",
    out_topic: str = "synthetic-out",
    exactly_once_sink: bool = False,
    shaping: Optional[WorkloadShaping] = None,
) -> JobGraph:
    """Build the chain source -> stage1 -> ... -> stage<depth-1> -> sink,
    keyed (shuffled) between consecutive stages.

    ``exactly_once_sink`` swaps the plain :class:`KafkaSink` for the
    Section 5.5 determinant-piggyback sink, so replaying the sink task
    itself does not duplicate output (requires causal recovery).

    ``shaping`` applies scenario-pack workload shaping: input bursts change
    arrival *times* (not record identity) via a shaped generated topic, and
    hot-key skew reroutes a deterministic subset of records to one key.
    ``None`` (the default) takes the exact historical code path."""
    if shaping is not None:
        shaping.validate()
    bursts = shaping.bursts if shaping is not None else ()
    hot = shaping.hot_keys if shaping is not None else None
    if (in_topic, 0) not in log._partitions:
        segments = rate_segments_for(rate_per_partition, bursts)
        if segments is not None:
            log.create_shaped_generated_topic(
                in_topic,
                parallelism,
                lambda p, off: (p, off),
                rate_per_partition,
                total_per_partition,
                segments,
            )
        else:
            log.create_generated_topic(
                in_topic,
                parallelism,
                lambda p, off: (p, off),
                rate_per_partition,
                total_per_partition,
            )
    if (out_topic, 0) not in log._partitions:
        log.create_topic(out_topic, parallelism)
    builder = JobGraphBuilder(f"synthetic-d{depth}-p{parallelism}")
    stream = builder.source(
        "src", lambda: KafkaSource(log, in_topic), parallelism=parallelism
    )
    for stage in range(1, max(2, depth)):
        if hot is not None:
            def keyed(v, s=stage, hk=hot):
                if hk.is_hot(v[0], v[1]):
                    return hk.hot_key % num_keys
                return (v[0] * 31 + v[1] + s) % num_keys

            stream = stream.key_by(keyed).process(
                f"stage{stage}",
                lambda s=stage: StatefulStageOperator(
                    s, num_keys, state_bytes_per_task, nondeterministic
                ),
            )
        else:
            stream = stream.key_by(
                lambda v, s=stage: (v[0] * 31 + v[1] + s) % num_keys
            ).process(
                f"stage{stage}",
                lambda s=stage: StatefulStageOperator(
                    s, num_keys, state_bytes_per_task, nondeterministic
                ),
            )
    if exactly_once_sink:
        stream.key_by(lambda v: v[1] % parallelism).sink(
            "sink", lambda: ExactlyOnceKafkaSink(log, out_topic)
        )
    else:
        stream.key_by(lambda v: v[1] % parallelism).sink(
            "sink", lambda: KafkaSink(log, out_topic)
        )
    return builder.build()
