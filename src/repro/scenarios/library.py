"""The named production incidents the CI matrix runs.

Every scenario plays against the default workload (depth 3, parallelism 2,
1200 records/partition at 2000 rec/s: a ~0.6 s failure-free run) unless it
says otherwise, and every verdict is machine-checked — see
:class:`~repro.scenarios.model.VerdictSpec`.  Timings place faults inside
the ingest window so recovery overlaps live traffic.

The incident taxonomy (what production outage each scenario reproduces) is
documented per scenario in DESIGN.md §9 and summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ScenarioError
from repro.scenarios.model import (
    FaultEntry,
    Phase,
    Scenario,
    VerdictSpec,
    WorkloadSpec,
)
from repro.workloads.synthetic import HotKeySkew, InputBurst, WorkloadShaping

#: Recovery budget (simulated seconds) generous enough for the escalation
#: ladder's reprovision path but far below the run limit, so a stuck
#: recovery fails the scenario instead of just looking slow.
_RECOVERY_BUDGET = 10.0

_STRICT = VerdictSpec(
    exactly_once=True,
    allow_announced_divergence=False,
    max_recovery_s=_RECOVERY_BUDGET,
    require_watchdog_ok=True,
)
_ANNOUNCED = VerdictSpec(
    exactly_once=True,
    allow_announced_divergence=True,
    max_recovery_s=_RECOVERY_BUDGET,
    require_watchdog_ok=True,
)


SCENARIOS: List[Scenario] = [
    Scenario(
        name="backpressure_storm",
        description=(
            "A 4x input burst overloads the chain while a mid-pipeline task "
            "dies at the burst's peak: recovery must replay through live "
            "backpressure without losing or duplicating output."
        ),
        phases=(
            Phase(
                name="kill-at-peak",
                at=0.2,
                faults=(FaultEntry(kind="task_kill", target="stage2[0]"),),
            ),
        ),
        workload=WorkloadSpec(
            shaping=WorkloadShaping(
                bursts=(InputBurst(start=0.1, duration=0.2, factor=4.0),)
            )
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="poison_pill",
        description=(
            "One input record deterministically crashes a stage operator on "
            "every incarnation; the crash loop must converge by quarantining "
            "the pill and announcing the (single-record) degradation."
        ),
        phases=(
            Phase(
                name="poison",
                at=0.15,
                faults=(FaultEntry(kind="poison_pill", target="stage1*", count=1),),
            ),
        ),
        verdict=_ANNOUNCED,
    ),
    Scenario(
        name="hot_key_straggler",
        description=(
            "Half the mid-stream records collapse onto one hot key while the "
            "node hosting the hot stage runs 6x slower (straggler): skew plus "
            "a straggler must degrade throughput, never correctness."
        ),
        phases=(
            Phase(
                name="straggle",
                at=0.1,
                faults=(
                    FaultEntry(
                        kind="compute_slowdown",
                        target="stage1[1]",
                        factor=6.0,
                        duration=0.3,
                    ),
                ),
            ),
        ),
        workload=WorkloadSpec(
            shaping=WorkloadShaping(
                hot_keys=HotKeySkew(
                    start_offset=200, end_offset=800, fraction=0.5
                )
            )
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="rolling_restart",
        description=(
            "An operator rolls the job one task at a time, source to sink, "
            "while traffic flows — four staggered kills, each recovering "
            "before the next lands (a longer 1.2s ingest window keeps "
            "traffic live across the whole roll)."
        ),
        phases=(
            Phase(
                name="roll",
                at=0.15,
                faults=(
                    FaultEntry(kind="task_kill", target="src[0]", at=0.0),
                    FaultEntry(kind="task_kill", target="stage1[0]", at=0.25),
                    FaultEntry(kind="task_kill", target="stage2[0]", at=0.5),
                    FaultEntry(kind="task_kill", target="sink[0]", at=0.75),
                ),
            ),
        ),
        workload=WorkloadSpec(n_records=2400),
        verdict=_STRICT,
    ),
    Scenario(
        name="zone_failover",
        description=(
            "An availability zone drops (half the cluster at once) and "
            "revives half a second later: a compound mass failure that may "
            "exceed local recovery — divergence must be announced, never "
            "silent, and nothing may be lost."
        ),
        phases=(
            Phase(
                name="zone-down",
                at=0.25,
                faults=(
                    FaultEntry(kind="zone_outage", target="0", duration=0.5),
                ),
            ),
        ),
        workload=WorkloadSpec(zones=2, spare_nodes=4),
        verdict=_ANNOUNCED,
    ),
    Scenario(
        name="broker_blackout",
        description=(
            "The output broker refuses every operation for 0.3s: sinks crash "
            "on append, recover, and the Section 5.5 determinant store must "
            "keep the re-appended output exactly-once."
        ),
        phases=(
            Phase(
                name="outage",
                at=0.2,
                faults=(FaultEntry(kind="broker_outage", duration=0.3),),
            ),
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="broker_brownout_compound",
        description=(
            "A flaky broker (30% failures), a node crash, and a truncated "
            "determinant replica all within one window — the compound "
            "incident: any divergence must be announced."
        ),
        phases=(
            Phase(
                name="brownout",
                at=0.15,
                faults=(
                    FaultEntry(kind="broker_brownout", duration=0.4, rate=0.3),
                ),
            ),
            Phase(
                name="node-kill",
                at=0.3,
                faults=(FaultEntry(kind="node_crash", target="stage1[0]"),),
            ),
            Phase(
                name="corrupt-and-kill",
                at=0.35,
                faults=(
                    FaultEntry(kind="determinant_truncation", target="stage2[0]"),
                    FaultEntry(kind="task_kill", target="stage2[0]", at=0.05),
                ),
            ),
        ),
        verdict=_ANNOUNCED,
    ),
    Scenario(
        name="crashloop",
        description=(
            "The same task dies four times in rapid succession (a crash-"
            "looping deployment): every incarnation must recover exactly-"
            "once, standby reprovisioning included."
        ),
        phases=(
            Phase(
                name="loop",
                at=0.12,
                faults=(FaultEntry(kind="task_kill", target="stage1[1]"),),
                repeat=4,
                every=0.12,
            ),
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="recovery_during_recovery",
        description=(
            "A second failure lands while the first is still recovering "
            "(connected tasks, 40ms apart): the coordinator must supersede "
            "or serialize, never deadlock — escalating to an announced "
            "global rollback is acceptable, silence is not."
        ),
        phases=(
            Phase(
                name="first",
                at=0.2,
                faults=(FaultEntry(kind="task_kill", target="stage1[0]"),),
            ),
            Phase(
                name="second-mid-recovery",
                at=0.24,
                faults=(FaultEntry(kind="task_kill", target="stage2[0]"),),
            ),
        ),
        verdict=_ANNOUNCED,
    ),
    Scenario(
        name="checkpoint_pressure",
        description=(
            "The checkpoint store (DFS) runs 6x slow while a task dies: "
            "recovery must proceed from whatever epoch is stable without "
            "stalling behind the brownout."
        ),
        phases=(
            Phase(
                name="dfs-slow",
                at=0.15,
                faults=(
                    FaultEntry(kind="dfs_brownout", duration=0.4, factor=6.0),
                ),
            ),
            Phase(
                name="kill",
                at=0.3,
                faults=(FaultEntry(kind="task_kill", target="stage2[1]"),),
            ),
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="control_plane_flap",
        description=(
            "The control plane drops a quarter of its RPCs (and duplicates "
            "some) exactly while a failure needs coordinating: recovery "
            "control traffic must retry through the flap."
        ),
        phases=(
            Phase(
                name="flap",
                at=0.2,
                faults=(
                    FaultEntry(
                        kind="rpc_chaos", duration=0.3, rate=0.25, dup_rate=0.1
                    ),
                ),
            ),
            Phase(
                name="kill-in-flap",
                at=0.3,
                faults=(FaultEntry(kind="task_kill", target="stage1[0]"),),
            ),
        ),
        verdict=_STRICT,
    ),
    Scenario(
        name="network_partition_flap",
        description=(
            "A data link partitions for 200ms, then another link drops two "
            "buffers: transient network faults must be absorbed by "
            "retransmission/backpressure with no recovery at all — or "
            "recover exactly-once if detection fires."
        ),
        phases=(
            Phase(
                name="partition",
                at=0.2,
                faults=(
                    FaultEntry(
                        kind="link_partition",
                        target="src[0]->stage1*",
                        duration=0.2,
                    ),
                ),
            ),
            Phase(
                name="loss",
                at=0.45,
                faults=(
                    FaultEntry(
                        kind="link_loss", target="stage1*->stage2*", count=2
                    ),
                ),
            ),
        ),
        verdict=_STRICT,
    ),
]


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise ScenarioError(f"unknown scenario {name!r}")


def pack_summary(results) -> Dict[str, object]:
    """Aggregate verdict of one pack run (benchmark extra_info friendly)."""
    failed = [r.name for r in results if not r.ok]
    return {
        "scenarios": len(results),
        "passed": sum(1 for r in results if r.ok),
        "failed": sorted(failed),
        "verdict": "ok" if not failed else "fail",
    }
