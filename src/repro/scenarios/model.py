"""The declarative scenario DSL.

A scenario is a plain dataclass tree, loadable from (and dumpable to) a
dict, so incident definitions can live in code or in JSON files.  Loading
is *strict*: unknown keys, unknown fault kinds, negative offsets, or a
missing verdict raise :class:`~repro.errors.ScenarioError` at load time —
a malformed scenario never reaches the runner.

Composition model:

* a :class:`Scenario` owns ordered :class:`Phase`\\ s;
* a phase fires its :class:`FaultEntry` list at ``phase.at``, optionally
  ``repeat`` times spaced ``every`` seconds (crashloops, rolling
  restarts);
* entries within a phase carry *relative* offsets, so phases compose and
  overlap freely (compound incidents are just phases that interleave);
* :class:`WorkloadSpec` shapes the synthetic chain (depth/parallelism/
  rate, zoned cluster, input bursts, hot-key skew);
* :class:`VerdictSpec` states what the run must satisfy to pass.

Determinism contract: ``scenario.seed`` fully determines the fault plan
and the job, so the same scenario + seed reproduces the same transcript
byte for byte (the runner digests it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.plan import FaultPlan, FaultSpec
from repro.errors import ChaosError, ScenarioError
from repro.workloads.synthetic import HotKeySkew, InputBurst, WorkloadShaping


def _check_keys(data: Dict[str, Any], allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(f"{where}: unknown keys {unknown}")


def _require(data: Dict[str, Any], key: str, where: str) -> Any:
    if key not in data:
        raise ScenarioError(f"{where}: missing required key {key!r}")
    return data[key]


@dataclass(frozen=True)
class FaultEntry:
    """One fault primitive inside a phase; ``at`` is relative to the
    phase's (repetition's) start time.  All other fields mirror
    :class:`~repro.chaos.plan.FaultSpec` and are validated by it."""

    kind: str
    at: float = 0.0
    target: str = "*"
    duration: float = 0.0
    count: int = 1
    rate: float = 0.0
    dup_rate: float = 0.0
    factor: float = 1.0
    fail_node: bool = False

    def validate(self) -> None:
        try:
            self.to_spec(0.0).validate()
        except ChaosError as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(f"fault entry: {exc}") from exc

    def to_spec(self, base: float) -> FaultSpec:
        return FaultSpec(
            at=base + self.at,
            kind=self.kind,
            target=self.target,
            duration=self.duration,
            count=self.count,
            rate=self.rate,
            dup_rate=self.dup_rate,
            factor=self.factor,
            fail_node=self.fail_node,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEntry":
        if not isinstance(data, dict):
            raise ScenarioError(f"fault entry must be a dict, got {data!r}")
        names = tuple(f.name for f in fields(cls))
        _check_keys(data, names, "fault entry")
        _require(data, "kind", "fault entry")
        entry = cls(**data)
        entry.validate()
        return entry


@dataclass(frozen=True)
class Phase:
    """A named stage of the incident: its faults fire at ``at`` (+ the
    entries' relative offsets), repeated ``repeat`` times ``every``
    seconds apart."""

    name: str
    at: float
    faults: Tuple[FaultEntry, ...]
    repeat: int = 1
    every: float = 0.0

    def validate(self) -> None:
        if not self.name:
            raise ScenarioError("phase: name must be non-empty")
        if self.at < 0:
            raise ScenarioError(f"phase {self.name!r}: offset must be >= 0")
        if self.repeat < 1:
            raise ScenarioError(f"phase {self.name!r}: repeat must be >= 1")
        if self.repeat > 1 and self.every <= 0:
            raise ScenarioError(
                f"phase {self.name!r}: repeat > 1 needs every > 0"
            )
        if self.every < 0:
            raise ScenarioError(f"phase {self.name!r}: every must be >= 0")
        if not self.faults:
            raise ScenarioError(f"phase {self.name!r}: needs at least one fault")
        for entry in self.faults:
            entry.validate()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "at": self.at,
            "faults": [entry.to_dict() for entry in self.faults],
            "repeat": self.repeat,
            "every": self.every,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Phase":
        if not isinstance(data, dict):
            raise ScenarioError(f"phase must be a dict, got {data!r}")
        _check_keys(data, ("name", "at", "faults", "repeat", "every"), "phase")
        name = _require(data, "name", "phase")
        faults = _require(data, "faults", f"phase {name!r}")
        if not isinstance(faults, (list, tuple)):
            raise ScenarioError(f"phase {name!r}: faults must be a list")
        phase = cls(
            name=name,
            at=_require(data, "at", f"phase {name!r}"),
            faults=tuple(FaultEntry.from_dict(f) for f in faults),
            repeat=data.get("repeat", 1),
            every=data.get("every", 0.0),
        )
        phase.validate()
        return phase


def _shaping_to_dict(shaping: Optional[WorkloadShaping]) -> Optional[Dict[str, Any]]:
    if shaping is None:
        return None
    hot = shaping.hot_keys
    return {
        "bursts": [
            {"start": b.start, "duration": b.duration, "factor": b.factor}
            for b in shaping.bursts
        ],
        "hot_keys": None
        if hot is None
        else {
            "start_offset": hot.start_offset,
            "end_offset": hot.end_offset,
            "fraction": hot.fraction,
            "hot_key": hot.hot_key,
        },
    }


def _shaping_from_dict(data: Optional[Dict[str, Any]]) -> Optional[WorkloadShaping]:
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ScenarioError(f"shaping must be a dict, got {data!r}")
    _check_keys(data, ("bursts", "hot_keys"), "shaping")
    bursts = data.get("bursts", [])
    if not isinstance(bursts, (list, tuple)):
        raise ScenarioError("shaping: bursts must be a list")
    burst_objs = []
    for b in bursts:
        if not isinstance(b, dict):
            raise ScenarioError(f"input burst must be a dict, got {b!r}")
        _check_keys(b, ("start", "duration", "factor"), "input burst")
        burst_objs.append(
            InputBurst(
                start=_require(b, "start", "input burst"),
                duration=_require(b, "duration", "input burst"),
                factor=_require(b, "factor", "input burst"),
            )
        )
    hot_data = data.get("hot_keys")
    hot = None
    if hot_data is not None:
        if not isinstance(hot_data, dict):
            raise ScenarioError(f"hot_keys must be a dict, got {hot_data!r}")
        _check_keys(
            hot_data,
            ("start_offset", "end_offset", "fraction", "hot_key"),
            "hot_keys",
        )
        hot = HotKeySkew(
            start_offset=_require(hot_data, "start_offset", "hot_keys"),
            end_offset=_require(hot_data, "end_offset", "hot_keys"),
            fraction=_require(hot_data, "fraction", "hot_keys"),
            hot_key=hot_data.get("hot_key", 0),
        )
    shaping = WorkloadShaping(bursts=tuple(burst_objs), hot_keys=hot)
    try:
        shaping.validate()
    except ScenarioError:
        raise
    except ChaosError as exc:  # pragma: no cover — defensive
        raise ScenarioError(str(exc)) from exc
    return shaping


@dataclass(frozen=True)
class WorkloadSpec:
    """The synthetic chain the incident plays out against."""

    depth: int = 3
    parallelism: int = 2
    n_records: int = 1200
    rate: float = 2000.0
    state_bytes: int = 8192
    num_keys: int = 16
    zones: int = 1
    spare_nodes: int = 2
    shaping: Optional[WorkloadShaping] = None

    def validate(self) -> None:
        if self.depth < 2:
            raise ScenarioError("workload: depth must be >= 2")
        if self.parallelism < 1:
            raise ScenarioError("workload: parallelism must be >= 1")
        if self.n_records < 1:
            raise ScenarioError("workload: n_records must be >= 1")
        if self.rate <= 0:
            raise ScenarioError("workload: rate must be > 0")
        if self.zones < 1:
            raise ScenarioError("workload: zones must be >= 1")
        if self.spare_nodes < 0:
            raise ScenarioError("workload: spare_nodes must be >= 0")
        if self.shaping is not None:
            self.shaping.validate()

    @property
    def horizon(self) -> float:
        """Failure-free ingest time (the window faults should land in)."""
        return self.n_records / self.rate

    def cache_key(self) -> Tuple:
        return (
            self.depth,
            self.parallelism,
            self.n_records,
            self.rate,
            self.state_bytes,
            self.num_keys,
            self.zones,
            self.spare_nodes,
            repr(_shaping_to_dict(self.shaping)),
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "shaping"}
        out["shaping"] = _shaping_to_dict(self.shaping)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"workload must be a dict, got {data!r}")
        names = tuple(f.name for f in fields(cls))
        _check_keys(data, names, "workload")
        kwargs = dict(data)
        kwargs["shaping"] = _shaping_from_dict(data.get("shaping"))
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class VerdictSpec:
    """What the run must satisfy to pass.

    * ``exactly_once`` — the sink-output projection must equal the
      failure-free baseline's, each origin exactly once.
    * ``allow_announced_divergence`` — relaxation: duplicates are
      acceptable if the run *announced* a degradation, and loss is
      acceptable only for records the poison registry quarantined
      (announced).  Silent divergence always fails.
    * ``max_recovery_s`` — every detected failure must reach
      ``recovered`` within this many simulated seconds.
    * ``require_watchdog_ok`` — the recovery-liveness watchdog must not
      have detected a stall (``stall_summary()['verdict'] == 'ok'``).
    """

    exactly_once: bool = True
    allow_announced_divergence: bool = False
    max_recovery_s: Optional[float] = None
    require_watchdog_ok: bool = True

    def validate(self) -> None:
        if self.max_recovery_s is not None and self.max_recovery_s <= 0:
            raise ScenarioError("verdict: max_recovery_s must be > 0")
        if not self.exactly_once and not self.allow_announced_divergence:
            raise ScenarioError(
                "verdict: exactly_once=False requires allow_announced_divergence"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerdictSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"verdict must be a dict, got {data!r}")
        names = tuple(f.name for f in fields(cls))
        _check_keys(data, names, "verdict")
        spec = cls(**data)
        spec.validate()
        return spec


@dataclass(frozen=True)
class Scenario:
    """One named production incident: phases + workload + verdict."""

    name: str
    description: str
    phases: Tuple[Phase, ...]
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    verdict: VerdictSpec = field(default_factory=VerdictSpec)
    seed: int = 0
    limit: float = 120.0
    checkpoint_interval: float = 0.5

    def validate(self) -> None:
        if not self.name:
            raise ScenarioError("scenario: name must be non-empty")
        if not self.phases:
            raise ScenarioError(f"scenario {self.name!r}: needs at least one phase")
        for phase in self.phases:
            phase.validate()
        self.workload.validate()
        self.verdict.validate()
        if self.limit <= 0:
            raise ScenarioError(f"scenario {self.name!r}: limit must be > 0")
        if self.checkpoint_interval <= 0:
            raise ScenarioError(
                f"scenario {self.name!r}: checkpoint_interval must be > 0"
            )

    def fault_plan(self, seed: Optional[int] = None) -> FaultPlan:
        """Flatten phases into an absolute-time :class:`FaultPlan`."""
        self.validate()
        plan = FaultPlan(seed=self.seed if seed is None else seed)
        for phase in self.phases:
            for rep in range(phase.repeat):
                base = phase.at + rep * phase.every
                for entry in phase.faults:
                    spec = entry.to_spec(base)
                    spec.validate()
                    plan.specs.append(spec)
        plan.specs.sort(key=lambda s: s.at)
        return plan

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "phases": [phase.to_dict() for phase in self.phases],
            "workload": self.workload.to_dict(),
            "verdict": self.verdict.to_dict(),
            "seed": self.seed,
            "limit": self.limit,
            "checkpoint_interval": self.checkpoint_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario must be a dict, got {data!r}")
        _check_keys(
            data,
            (
                "name",
                "description",
                "phases",
                "workload",
                "verdict",
                "seed",
                "limit",
                "checkpoint_interval",
            ),
            "scenario",
        )
        name = _require(data, "name", "scenario")
        phases = _require(data, "phases", f"scenario {name!r}")
        if not isinstance(phases, (list, tuple)):
            raise ScenarioError(f"scenario {name!r}: phases must be a list")
        verdict = _require(data, "verdict", f"scenario {name!r}")
        scenario = cls(
            name=name,
            description=data.get("description", ""),
            phases=tuple(Phase.from_dict(p) for p in phases),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            verdict=VerdictSpec.from_dict(verdict),
            seed=data.get("seed", 0),
            limit=data.get("limit", 120.0),
            checkpoint_interval=data.get("checkpoint_interval", 0.5),
        )
        scenario.validate()
        return scenario
