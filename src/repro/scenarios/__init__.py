"""Production incident scenario pack.

A :class:`~repro.scenarios.model.Scenario` is *data*: phased fault
schedules (built from :class:`~repro.chaos.plan.FaultSpec` primitives),
workload shaping (input bursts, hot-key skew), and an explicit, machine-
checkable verdict spec.  The runner executes a scenario against the
synthetic nondeterministic chain and grades the run; the library holds the
named production incidents the CI matrix executes (``repro scenarios``).
"""

from repro.scenarios.model import (
    FaultEntry,
    Phase,
    Scenario,
    VerdictSpec,
    WorkloadSpec,
)
from repro.scenarios.runner import ScenarioResult, run_pack, run_scenario
from repro.scenarios.library import SCENARIOS, scenario_by_name

__all__ = [
    "FaultEntry",
    "Phase",
    "Scenario",
    "VerdictSpec",
    "WorkloadSpec",
    "ScenarioResult",
    "run_pack",
    "run_scenario",
    "SCENARIOS",
    "scenario_by_name",
]
