"""Execute scenarios and grade their verdicts.

Each run mirrors the chaos soak harness (synthetic nondeterministic chain,
exactly-once sink) but adds: a zoned cluster with spare nodes, workload
shaping, a failure-free *baseline* run (cached per workload) whose output
digest and duration anchor the verdict, and a deterministic transcript
digest — the same scenario + seed reproduces the same transcript byte for
byte, so a failing scenario replays exactly under ``repro scenarios
--only <name>``.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.engine import ChaosEngine
from repro.chaos.soak import (
    DEGRADATION_MARKERS,
    fast_chaos_config,
    output_projection,
)
from repro.errors import JobError, ScenarioError
from repro.external.kafka import DurableLog
from repro.metrics.collectors import stall_summary
from repro.runtime.cluster import Cluster
from repro.runtime.jobmanager import JobManager
from repro.scenarios.model import Scenario, WorkloadSpec
from repro.sim.core import Environment
from repro.workloads.synthetic import synthetic_chain

IN_TOPIC = "scenario-in"
OUT_TOPIC = "scenario-out"

#: Failure-free baseline cache: (workload key, seed, interval) ->
#: (projection Counter, duration).  Scenarios sharing a workload pay for
#: one baseline run, not one per scenario.
_BASELINE_CACHE: Dict[Tuple, Tuple[Counter, float]] = {}


@dataclass
class ScenarioResult:
    """One scenario run, graded."""

    name: str
    verdict: str  # "pass" | "fail"
    checks: Dict[str, str]  # check name -> "ok" | "fail: <detail>"
    seed: int
    duration: float
    baseline_duration: float
    expected: int
    delivered: int
    missing: int
    duplicated: int
    quarantined: int
    degradations: int
    recovery_time: Optional[float]
    transcript_digest: str
    chaos_summary: Dict[str, object] = field(default_factory=dict)
    recovery_events: List[Tuple[float, str, str]] = field(
        default_factory=list, repr=False
    )

    @property
    def ok(self) -> bool:
        return self.verdict == "pass"

    @property
    def duration_overhead(self) -> float:
        """Wall-clock (simulated) cost of the incident vs. failure-free."""
        if self.baseline_duration <= 0:
            return 0.0
        return self.duration / self.baseline_duration

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "checks": dict(self.checks),
            "seed": self.seed,
            "duration_s": round(self.duration, 6),
            "baseline_duration_s": round(self.baseline_duration, 6),
            "duration_overhead": round(self.duration_overhead, 4),
            "expected": self.expected,
            "delivered": self.delivered,
            "missing": self.missing,
            "duplicated": self.duplicated,
            "quarantined": self.quarantined,
            "degradations": self.degradations,
            "recovery_time_s": None
            if self.recovery_time is None
            else round(self.recovery_time, 6),
            "transcript_digest": self.transcript_digest,
            "chaos": dict(self.chaos_summary),
        }


def _build_job(workload: WorkloadSpec, seed: int, checkpoint_interval: float):
    config = fast_chaos_config(seed=seed, checkpoint_interval=checkpoint_interval)
    env = Environment()
    log = DurableLog()
    graph = synthetic_chain(
        log,
        depth=workload.depth,
        parallelism=workload.parallelism,
        rate_per_partition=workload.rate,
        total_per_partition=workload.n_records,
        state_bytes_per_task=workload.state_bytes,
        num_keys=workload.num_keys,
        nondeterministic=True,
        in_topic=IN_TOPIC,
        out_topic=OUT_TOPIC,
        exactly_once_sink=True,
        shaping=workload.shaping,
    )
    cluster = Cluster(
        num_nodes=max(4, graph.total_tasks) + workload.spare_nodes,
        slots_per_node=2,
        zones=workload.zones,
    )
    jm = JobManager(env, graph, config, cluster=cluster)
    return env, log, jm


def _baseline(workload: WorkloadSpec, seed: int, interval: float) -> Tuple[Counter, float]:
    key = (workload.cache_key(), seed, interval)
    cached = _BASELINE_CACHE.get(key)
    if cached is not None:
        return cached
    env, log, jm = _build_job(workload, seed, interval)
    jm.deploy()
    jm.run_until_done(limit=120.0)
    projection = output_projection(
        entry.value for entry in log.read_all(OUT_TOPIC)
    )
    result = (projection, env.now)
    _BASELINE_CACHE[key] = result
    return result


def _transcript_digest(
    seed: int,
    recovery_events: Sequence[Tuple[float, str, str]],
    chaos_notes: Sequence,
    projection: Counter,
) -> str:
    """Byte-stable digest of everything observable about the run: the seed,
    the recovery-event timeline, the chaos engine's injection notes, and the
    output projection.  Same seed -> same transcript -> same digest."""
    h = hashlib.sha256()
    h.update(f"seed={seed}\n".encode())
    for t, kind, who in recovery_events:
        h.update(f"{t!r}|{kind}|{who}\n".encode())
    for note in chaos_notes:
        h.update(f"{note!r}\n".encode())
    for pair, count in sorted(projection.items()):
        h.update(f"{pair!r}={count}\n".encode())
    return h.hexdigest()


def _recovery_spans(
    recovery_events: Sequence[Tuple[float, str, str]], end_time: float
) -> List[Tuple[str, float]]:
    """(task, seconds) per detected failure, measured detected -> recovered.
    A detection never followed by recovery (the run ended degraded, or a
    global restart superseded it) spans to the next global restart if one
    follows, else to the end of the run."""
    pending: Dict[str, List[float]] = {}
    spans: List[Tuple[str, float]] = []
    restarts = [t for (t, kind, _w) in recovery_events if kind == "global-restart-begin"]
    for t, kind, who in recovery_events:
        if kind == "detected":
            pending.setdefault(who, []).append(t)
        elif kind == "recovered" and pending.get(who):
            spans.append((who, t - pending[who].pop(0)))
    for who, starts in pending.items():
        for start in starts:
            later = [t for t in restarts if t >= start]
            spans.append((who, (later[0] if later else end_time) - start))
    return spans


def run_scenario(scenario: Scenario, seed: Optional[int] = None) -> ScenarioResult:
    """Run one scenario and grade it against its verdict spec."""
    scenario.validate()
    run_seed = scenario.seed if seed is None else seed
    plan = scenario.fault_plan(seed=run_seed)
    baseline_projection, baseline_duration = _baseline(
        scenario.workload, run_seed, scenario.checkpoint_interval
    )

    env, log, jm = _build_job(
        scenario.workload, run_seed, scenario.checkpoint_interval
    )
    jm.deploy()
    engine = ChaosEngine(jm, plan)
    engine.arm()
    checks: Dict[str, str] = {}
    try:
        jm.run_until_done(limit=scenario.limit)
        checks["completed"] = "ok"
    except JobError as exc:
        checks["completed"] = f"fail: {exc}"

    projection = output_projection(
        entry.value for entry in log.read_all(OUT_TOPIC)
    )
    missing = [pair for pair in baseline_projection if projection[pair] == 0]
    extra = [pair for pair in projection if pair not in baseline_projection]
    duplicated = {pair: c for pair, c in projection.items() if c > 1}
    degradations = [
        (t, kind, who)
        for (t, kind, who) in jm.recovery_events
        if kind in DEGRADATION_MARKERS
    ]
    quarantined = {ident for (_task, ident) in jm.poison.quarantine_log}

    # -- output check -------------------------------------------------------
    verdict_spec = scenario.verdict
    if extra:
        checks["output"] = f"fail: {len(extra)} records outside the baseline set"
    elif verdict_spec.allow_announced_divergence:
        unannounced_loss = [pair for pair in missing if pair not in quarantined]
        if unannounced_loss:
            checks["output"] = (
                f"fail: {len(unannounced_loss)} records silently lost"
            )
        elif duplicated and not degradations:
            checks["output"] = (
                f"fail: {sum(c - 1 for c in duplicated.values())} duplicates "
                "without an announced degradation"
            )
        else:
            checks["output"] = "ok"
    else:
        if missing or duplicated:
            checks["output"] = (
                f"fail: missing={len(missing)} "
                f"duplicated={sum(c - 1 for c in duplicated.values())}"
            )
        else:
            checks["output"] = "ok"

    # -- recovery-time check ------------------------------------------------
    spans = _recovery_spans(jm.recovery_events, env.now)
    worst = max((s for _w, s in spans), default=None)
    if verdict_spec.max_recovery_s is not None:
        slow = [
            (who, s) for who, s in spans if s > verdict_spec.max_recovery_s
        ]
        if slow:
            who, s = max(slow, key=lambda x: x[1])
            checks["recovery"] = (
                f"fail: {who} took {s:.3f}s "
                f"(budget {verdict_spec.max_recovery_s:g}s)"
            )
        else:
            checks["recovery"] = "ok"

    # -- watchdog check -----------------------------------------------------
    if verdict_spec.require_watchdog_ok:
        stall = stall_summary(jm)
        checks["watchdog"] = (
            "ok"
            if stall["verdict"] == "ok"
            else f"fail: {stall['stalls_detected']} stalls detected"
        )

    digest = _transcript_digest(
        run_seed, jm.recovery_events, engine.applied + engine.skipped, projection
    )
    failed = [name for name, status in checks.items() if status != "ok"]
    return ScenarioResult(
        name=scenario.name,
        verdict="fail" if failed else "pass",
        checks=checks,
        seed=run_seed,
        duration=env.now,
        baseline_duration=baseline_duration,
        expected=sum(baseline_projection.values()),
        delivered=sum(projection.values()),
        missing=len(missing),
        duplicated=sum(c - 1 for c in duplicated.values()),
        quarantined=len(quarantined),
        degradations=len(degradations),
        recovery_time=worst,
        transcript_digest=digest,
        chaos_summary=engine.summary(),
        recovery_events=list(jm.recovery_events),
    )


def run_pack(
    scenarios: Sequence[Scenario],
    only: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run a list of scenarios (optionally filtered by name)."""
    selected = list(scenarios)
    if only:
        wanted = set(only)
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            raise ScenarioError(f"unknown scenario(s): {sorted(unknown)}")
        selected = [s for s in selected if s.name in wanted]
    return [run_scenario(s, seed=seed) for s in selected]
