"""Measurement, the way the paper does it (Section 7.1).

Throughput: sample the output Kafka topic three times per second and divide
new records by elapsed time.  Latency: per output record, append time minus
the record's creation (availability) time at the source.  Recovery time
(Section 7.4): from the failure instant until observed latency returns to
within 10% of the pre-failure level — including catch-up.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.external.kafka import DurableLog
from repro.sim.core import Environment


class ThroughputSample(NamedTuple):
    time: float
    records_per_second: float


class LatencyPoint(NamedTuple):
    time: float  # when the record appeared at the sink topic
    latency: float


class ThroughputSampler:
    """Polls a topic's size on a fixed period (default 1/3 s, as the paper)."""

    def __init__(
        self,
        env: Environment,
        log: DurableLog,
        topic: str,
        period: float = 1.0 / 3.0,
    ):
        self.env = env
        self.log = log
        self.topic = topic
        self.period = period
        self.samples: List[ThroughputSample] = []
        self._last_size = 0
        self._proc = env.process(self._run(), name=f"throughput:{topic}")

    def _run(self):
        while True:
            yield self.env.timeout(self.period)
            size = self.log.topic_size(self.topic)
            rate = (size - self._last_size) / self.period
            self._last_size = size
            self.samples.append(ThroughputSample(self.env.now, rate))

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.kill()

    def mean_rate(self, start: float = 0.0, end: float = float("inf")) -> float:
        rates = [s.records_per_second for s in self.samples if start <= s.time <= end]
        return sum(rates) / len(rates) if rates else 0.0


def latency_points(log: DurableLog, topic: str) -> List[LatencyPoint]:
    """End-to-end latency of every record in the output topic.

    Records emitted by timers (window results) have no source record to
    inherit ``created_at`` from; for those we fall back to the record's
    event time, which in all our workloads equals the availability time at
    the broker — so the fallback still measures "output appeared this long
    after the data existed" (plus the constant watermark wait).
    """
    points = []
    for when, entry in log.read_all_with_times(topic):
        if entry.created_at is not None:
            points.append(LatencyPoint(when, when - entry.created_at))
        elif entry.event_time is not None and entry.event_time == entry.event_time \
                and abs(entry.event_time) != float("inf"):
            points.append(LatencyPoint(when, max(0.0, when - entry.event_time)))
    points.sort(key=lambda p: p.time)
    return points


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def recovery_time(
    points: Iterable[LatencyPoint],
    failure_time: float,
    tolerance: float = 0.10,
    baseline_window: float = 5.0,
) -> Optional[float]:
    """The paper's recovery-time metric (Section 7.4): time from the failure
    until observed latency is back within ``tolerance`` of the pre-failure
    level — including stream catch-up.

    Pre-failure level = p95 latency over ``baseline_window`` seconds before
    the failure.  Because unaffected parallel paths keep emitting at normal
    latency throughout (Section 7.4), we take the *last* post-failure record
    above the threshold: after it, the whole job is back to normal.
    """
    pts = sorted(points, key=lambda p: p.time)
    before = [
        p.latency
        for p in pts
        if failure_time - baseline_window <= p.time < failure_time
    ]
    if not before:
        return None
    threshold = percentile(before, 95) * (1.0 + tolerance) + 1e-9
    late = [p.time for p in pts if p.time >= failure_time and p.latency > threshold]
    if not late:
        return 0.0  # nothing ever exceeded the pre-failure envelope
    return max(late) - failure_time


def count_events(
    recovery_events: Iterable[Tuple[float, str, str]],
    prefix: str,
    who: Optional[str] = None,
) -> int:
    """How many recovery events have a kind starting with ``prefix``
    (optionally restricted to one subject).  Event kinds are structured as
    ``"family[:detail]"`` — e.g. ``count_events(evs, "rpc-retry")`` counts
    every control-plane resend, ``count_events(evs, "recovery-retry")``
    every escalation-ladder step."""
    return sum(
        1
        for (_t, kind, subject) in recovery_events
        if kind.startswith(prefix) and (who is None or subject == who)
    )


def recovery_summary(
    recovery_events: Sequence[Tuple[float, str, str]],
) -> dict:
    """Tally the hardened-recovery machinery's event families for one run:
    how often steps timed out or failed, how often recovery retried or
    degraded, how many control RPCs were resent, how many spurious
    failovers the suspicion threshold let through."""
    return {
        "detected": count_events(recovery_events, "detected"),
        "recovered": count_events(recovery_events, "recovered"),
        "step_timeouts": count_events(recovery_events, "step-timeout"),
        "step_failures": count_events(recovery_events, "step-failed"),
        "recovery_retries": count_events(recovery_events, "recovery-retry"),
        "rpc_retries": count_events(recovery_events, "rpc-retry"),
        "rpc_exhausted": count_events(recovery_events, "rpc-exhausted"),
        "dfs_retries": count_events(recovery_events, "dfs-retry"),
        "degradations": count_events(recovery_events, "degraded"),
        "recovery_stalls": count_events(recovery_events, "recovery-stalled"),
        "spurious_failovers": count_events(recovery_events, "spurious-failover"),
        "standby_losses": count_events(recovery_events, "standby-lost"),
        "standby_reprovisioned": count_events(
            recovery_events, "standby-reprovisioned"
        ),
        "chaos_injected": count_events(recovery_events, "chaos:"),
        "integrity_events": count_events(recovery_events, "integrity:"),
        "epoch_fallbacks": count_events(recovery_events, "integrity:epoch-fallback"),
    }


def integrity_summary(jm) -> dict:
    """Per-artifact validation counters for one run: everything the
    :class:`~repro.integrity.monitor.IntegrityMonitor` verified or flagged,
    plus the integrity events the recovery ladder recorded (epoch fallbacks,
    invalidated epochs, timeline rewinds).  Flat dict, benchmark
    ``extra_info``-friendly."""
    summary = jm.integrity.summary()
    summary["integrity_events"] = count_events(jm.recovery_events, "integrity:")
    summary["epoch_fallbacks"] = count_events(
        jm.recovery_events, "integrity:epoch-fallback"
    )
    return summary


def stall_summary(jm) -> dict:
    """Recovery-liveness verdict for one run, benchmark ``extra_info``-
    friendly: ``verdict`` is ``"stalled"`` iff the watchdog detected a
    frozen progress fingerprint (or the run died on a structured
    :class:`~repro.errors.RecoveryStallError`), else ``"ok"``."""
    from repro.errors import RecoveryStallError

    watchdog = getattr(jm, "watchdog", None)
    stalls = getattr(watchdog, "stalls_detected", 0)
    stall_crash = any(
        isinstance(exc, RecoveryStallError) for (_name, exc) in jm.crashed
    )
    return {
        "verdict": "stalled" if (stalls or stall_crash) else "ok",
        "stalls_detected": stalls,
        "stall_escalations": getattr(watchdog, "escalations", 0),
        "stalls_announced": count_events(
            jm.recovery_events, "degraded:recovery_stalled"
        ),
    }


def throughput_dip(
    samples: Sequence[ThroughputSample],
    failure_time: float,
    baseline_window: float = 5.0,
) -> Tuple[float, float]:
    """(baseline rate, minimum rate after the failure): quantifies downtime."""
    before = [
        s.records_per_second
        for s in samples
        if failure_time - baseline_window <= s.time < failure_time
    ]
    after = [s.records_per_second for s in samples if s.time >= failure_time]
    baseline = sum(before) / len(before) if before else 0.0
    worst = min(after) if after else 0.0
    return baseline, worst


def scenario_summary(results) -> dict:
    """Aggregate verdict of a scenario-pack run (duck-typed: accepts
    :class:`~repro.scenarios.runner.ScenarioResult` objects or their
    ``to_dict()`` forms), shaped for benchmark ``extra_info``."""
    def _field(r, name, default=None):
        if isinstance(r, dict):
            return r.get(name, default)
        return getattr(r, name, default)

    failed = sorted(
        _field(r, "name", "?") for r in results
        if _field(r, "verdict") != "pass"
    )
    worst = [
        (
            _field(r, "recovery_time", _field(r, "recovery_time_s")) or 0.0,
            _field(r, "name", "?"),
        )
        for r in results
    ]
    slowest = max(worst, default=(0.0, None))
    return {
        "scenarios": len(results),
        "passed": sum(1 for r in results if _field(r, "verdict") == "pass"),
        "failed": failed,
        "verdict": "ok" if not failed else "fail",
        "worst_recovery_s": round(slowest[0], 6),
        "worst_recovery_scenario": slowest[1],
    }
