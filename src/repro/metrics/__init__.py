"""Measurement utilities matching the paper's methodology (Section 7.1)."""

from repro.metrics.collectors import (
    LatencyPoint,
    ThroughputSample,
    ThroughputSampler,
    latency_points,
    percentile,
    recovery_time,
    throughput_dip,
)

__all__ = [
    "LatencyPoint",
    "ThroughputSample",
    "ThroughputSampler",
    "latency_points",
    "percentile",
    "recovery_time",
    "throughput_dip",
]
