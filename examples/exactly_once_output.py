"""Exactly-once *output* (Section 5.5): three sinks, one failure.

    python examples/exactly_once_output.py

Exactly-once processing keeps operator *state* consistent, but the moment a
sink task itself is replayed, its appends to the external system repeat —
the classic output-commit problem.  The paper discusses three answers:

1. plain sink            -> duplicates in the output topic after recovery;
2. transactional sink    -> exactly-once, but output is held back until the
                            epoch's checkpoint completes (latency += up to a
                            whole checkpoint interval);
3. Clonos' §5.5 sink     -> determinants piggybacked on the records let the
                            recovering sink skip exactly what the external
                            system already stores: exactly-once at plain-sink
                            latency.

This script runs the same alerting pipeline with each sink, kills the sink
task mid-run, and prints duplicates / losses / output latency for all three.
"""

from collections import Counter

from repro import Environment, FaultToleranceMode, JobConfig, JobGraphBuilder, JobManager
from repro.core.output import ExactlyOnceKafkaSink
from repro.external.kafka import DurableLog
from repro.metrics.collectors import latency_points, percentile
from repro.operators import (
    FilterOperator,
    KafkaSink,
    KafkaSource,
    TransactionalKafkaSink,
)

N_READINGS = 6000
RATE = 3000.0


def reading(partition: int, offset: int):
    """A sensor reading: (id, temperature)."""
    return (offset, 15.0 + (offset * 37) % 30)


def run(sink_factory):
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("readings", 1, reading, RATE, N_READINGS)
    log.create_topic("alerts", 1)
    builder = JobGraphBuilder("alerts")
    stream = builder.source("src", lambda: KafkaSource(log, "readings"))
    hot = stream.key_by(lambda r: r[0] % 4).process(
        "hot", lambda: FilterOperator(lambda r: r[1] >= 30.0)
    )
    hot.key_by(lambda r: 0).sink("sink", lambda: sink_factory(log))
    config = JobConfig(mode=FaultToleranceMode.CLONOS, checkpoint_interval=0.5)
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(1.0, lambda: jm.kill_task("sink[0]"))
    jm.run_until_done(limit=300)

    counts = Counter(entry.value[0] for entry in log.read_all("alerts"))
    expected = {i for i in range(N_READINGS) if reading(0, i)[1] >= 30.0}
    duplicates = sum(c - 1 for c in counts.values())
    lost = len(expected - set(counts))
    pre_failure = [p.latency for p in latency_points(log, "alerts") if p.time < 1.0]
    return duplicates, lost, percentile(pre_failure, 50) * 1e3


def main() -> None:
    print(f"{'sink':<28}{'duplicates':>11}{'lost':>6}{'p50 latency':>14}")
    for label, factory in (
        ("plain KafkaSink", lambda log: KafkaSink(log, "alerts")),
        ("TransactionalKafkaSink", lambda log: TransactionalKafkaSink(log, "alerts")),
        ("ExactlyOnceKafkaSink (§5.5)", lambda log: ExactlyOnceKafkaSink(log, "alerts")),
    ):
        duplicates, lost, p50 = run(factory)
        print(f"{label:<28}{duplicates:>11}{lost:>6}{p50:>12.1f}ms")
    print(
        "\nThe §5.5 sink matches the transactional sink's exactly-once output\n"
        "while keeping the plain sink's low latency."
    )


if __name__ == "__main__":
    main()
