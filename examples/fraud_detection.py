"""Fraud detection: nondeterministic UDFs calling an external service.

    python examples/fraud_detection.py

This is the class of workload the paper's introduction motivates: an
event-driven application whose operator logic is *nondeterministic* — it
queries an external risk-score service (whose answers drift over time) and
draws random numbers for sampling.  Under classic local recovery, replaying
such an operator after a failure silently produces *different* decisions
than the ones already acted upon downstream.  Clonos' causal services log
each nondeterministic result and replay it, so recovery is consistent.

The script runs the same pipeline under Clonos and under divergent (no
determinants) local recovery, kills the scoring operator in both, and shows
that only Clonos keeps one consistent verdict per transaction.
"""

from collections import defaultdict

from repro import Environment, FaultToleranceMode, JobConfig, JobGraphBuilder, JobManager
from repro.external.http import ExternalService
from repro.external.kafka import DurableLog
from repro.operators import KafkaSink, KafkaSource, ProcessOperator
from repro.sim.rng import RandomStreams

N_TRANSACTIONS = 4000
RATE = 2000.0


def make_transaction(partition: int, offset: int):
    """A card transaction: (txn id, merchant id, amount)."""
    return (offset, f"m{offset % 17}", 10.0 + (offset * 7919) % 990)


def scoring_operator():
    """Score each transaction against the external risk service and randomly
    sample low-risk ones for audit — both nondeterministic."""

    def score(record, ctx):
        txn_id, merchant, amount = record.value
        # External call: the risk index for this merchant *right now*.
        risk = ctx.services.custom(
            "risk-index", lambda key: _service_holder[0].get_now(key), merchant
        )
        flagged = amount * risk / 100.0 > 450.0
        audited = not flagged and ctx.services.random() < 0.02
        if flagged or audited:
            ctx.collect((txn_id, "FRAUD" if flagged else "AUDIT", round(risk, 2)))

    return ProcessOperator(score)


_service_holder = [None]


def build_job(log: DurableLog):
    builder = JobGraphBuilder("fraud")
    stream = builder.source("txns", lambda: KafkaSource(log, "txns"))
    verdicts = stream.key_by(lambda t: t[1]).process("score", scoring_operator)
    verdicts.key_by(lambda v: v[0] % 4).sink(
        "sink", lambda: KafkaSink(log, "verdicts")
    )
    return builder.build()


def run(mode: FaultToleranceMode):
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("txns", 1, make_transaction, RATE, N_TRANSACTIONS)
    log.create_topic("verdicts", 1)
    config = JobConfig(mode=mode, checkpoint_interval=0.5)
    external = ExternalService(env, RandomStreams(7), name="risk")
    _service_holder[0] = external
    jm = JobManager(env, build_job(log), config, external=external)
    jm.deploy()
    env.schedule_callback(1.0, lambda: jm.kill_task("score[0]"))
    jm.run_until_done(limit=120)

    verdicts = defaultdict(set)
    for entry in log.read_all("verdicts"):
        txn_id, verdict, risk = entry.value
        verdicts[txn_id].add((verdict, risk))
    return verdicts


def main() -> None:
    for mode, label in (
        (FaultToleranceMode.CLONOS, "Clonos (causal logging)"),
        (FaultToleranceMode.DIVERGENT, "divergent local replay (no determinants)"),
    ):
        verdicts = run(mode)
        conflicting = {
            txn: sorted(entries) for txn, entries in verdicts.items() if len(entries) > 1
        }
        print(f"\n{label}:")
        print(f"  transactions with a verdict : {len(verdicts)}")
        print(f"  conflicting verdicts        : {len(conflicting)}")
        for txn, entries in list(conflicting.items())[:5]:
            print(f"    txn {txn}: {entries}")
        if mode is FaultToleranceMode.CLONOS:
            assert not conflicting, "Clonos must not produce conflicting verdicts"
            print("  -> every transaction has exactly one consistent verdict")
        else:
            print("  -> replay re-ran the nondeterministic logic and disagreed "
                  "with what was already emitted" if conflicting else
                  "  -> (got lucky this run; duplicates may still exist)")


if __name__ == "__main__":
    main()
