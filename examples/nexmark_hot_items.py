"""Nexmark hot items (Q5) under failure: watch availability, not just
correctness.

    python examples/nexmark_hot_items.py

Runs the skew-resistant hot-items query (auction with the most bids per
sliding window, computed through an aggregation tree) on the Nexmark
generator, kills one counting subtask mid-run under both Clonos and vanilla
Flink recovery, and prints the output-rate timeline plus the recovery-time
metric of Section 7.4 for each.
"""

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.harness.figures import experiment_config, nexmark_graph_fn
from repro.harness.reporters import render_series

EVENTS_PER_PARTITION = 30000
RATE = 5000.0
KILL_AT = 4.0


def main() -> None:
    for mode, label in (
        (FaultToleranceMode.CLONOS, "Clonos"),
        (FaultToleranceMode.GLOBAL_ROLLBACK, "vanilla Flink (global rollback)"),
    ):
        config = experiment_config(mode, None, checkpoint_interval=2.0)
        result = run_experiment(
            nexmark_graph_fn("Q5", 2, EVENTS_PER_PARTITION, RATE),
            config,
            kills=[(KILL_AT, "count[0]")],
            limit=3600,
        )
        recovery = result.recovery_time_after(0)
        print(f"\n=== {label} ===")
        print(f"job finished after {result.duration:.1f}s simulated time")
        if recovery is not None:
            print(f"failure at t={KILL_AT:.0f}s, recovery time: {recovery:.2f}s")
        else:
            print(f"failure at t={KILL_AT:.0f}s, recovery time: n/a")
        print(render_series(
            "output rate (records/s)",
            [(s.time, s.records_per_second) for s in result.output_throughput],
        ))


if __name__ == "__main__":
    main()
