"""Quickstart: build a streaming job, run it, kill an operator, and watch
Clonos recover it with exactly-once results.

    python examples/quickstart.py

The pipeline is the classic keyed word-count:

    kafka source -> tokenize (flat_map) -> count per word (keyed) -> sink

Halfway through, we kill the counting operator.  Clonos activates its
standby, retrieves the determinant log from the sink, replays the in-flight
records from the tokenizer, and the final counts come out exactly as if the
failure never happened — which this script verifies.
"""

from collections import Counter

from repro import Environment, FaultToleranceMode, JobConfig, JobGraphBuilder, JobManager
from repro.external.kafka import DurableLog
from repro.operators import FlatMapOperator, KafkaSink, KafkaSource, KeyedCounterOperator

SENTENCES = (
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "a fox is quick",
)


def build_job(log: DurableLog) -> "JobGraphBuilder":
    """source -> tokenize -> count -> sink."""
    builder = JobGraphBuilder("wordcount")
    lines = builder.source("lines", lambda: KafkaSource(log, "lines"))
    words = lines.process(
        "tokenize", lambda: FlatMapOperator(lambda line: line.split())
    )
    counts = words.key_by(lambda word: word).process(
        "count", lambda: KeyedCounterOperator()
    )
    counts.key_by(lambda pair: pair[0]).sink("sink", lambda: KafkaSink(log, "counts"))
    return builder.build()


def run(kill_the_counter: bool) -> Counter:
    env = Environment()
    log = DurableLog()
    # 4000 sentences arriving at 2000/s: a ~2 second stream.
    log.create_generated_topic(
        "lines", 1, lambda p, off: SENTENCES[off % len(SENTENCES)], 2000.0, 4000
    )
    log.create_topic("counts", 1)

    config = JobConfig(mode=FaultToleranceMode.CLONOS, checkpoint_interval=0.5)
    jm = JobManager(env, build_job(log), config)
    jm.deploy()
    if kill_the_counter:
        env.schedule_callback(1.0, lambda: jm.kill_task("count[0]"))
    jm.run_until_done(limit=120)

    # The sink topic holds every (word, running_count) update; the final
    # count per word is the largest update seen.
    finals: Counter = Counter()
    for entry in log.read_all("counts"):
        word, count = entry.value
        finals[word] = max(finals[word], count)
    return finals


def main() -> None:
    print("run 1: failure-free baseline ...")
    baseline = run(kill_the_counter=False)
    print("run 2: killing count[0] at t=1.0s ...")
    with_failure = run(kill_the_counter=True)

    print("\nword counts (failure-free == with failure?):")
    for word in sorted(baseline):
        marker = "ok" if baseline[word] == with_failure[word] else "MISMATCH"
        print(f"  {word:8s} {baseline[word]:6d} {with_failure[word]:6d}  {marker}")
    assert baseline == with_failure, "exactly-once violated!"
    print("\nexactly-once holds: the failure left no trace in the results.")


if __name__ == "__main__":
    main()
