#!/usr/bin/env python
"""CI gate: NDLint every shipped example and Nexmark query.

Equivalent to ``python -m repro lint all``; exits non-zero when any target
carries an un-intercepted source of nondeterminism (README, "Verifying your
pipeline is causally loggable").
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["lint", "all"]))
