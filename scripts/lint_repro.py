#!/usr/bin/env python
"""CI gate: NDLint every shipped example and Nexmark query, then run the
interprocedural causal-coverage analyzer over the framework tree.

Equivalent to ``python -m repro lint all && python -m repro verify-static``;
exits non-zero when any target carries an un-intercepted source of
nondeterminism or the tree violates ND201/ND202/ND203/ND210 (README,
"Verifying your pipeline is causally loggable").  Exit codes follow the
determinism-tooling convention: 0 clean, 1 findings, 2 internal error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main  # noqa: E402


def run() -> int:
    lint_rc = main(["lint", "all"])
    static_rc = main(["verify-static"])
    return max(lint_rc, static_rc)


if __name__ == "__main__":
    sys.exit(run())
