"""Quick probe of the figure harness at tiny scale (dev tool)."""

import sys
import time

from repro.harness.figures import (
    fig5_overhead,
    fig6_single_failure,
    table1_assumptions,
)

which = sys.argv[1] if len(sys.argv) > 1 else "fig5"
t0 = time.time()

if which == "fig5":
    rows = fig5_overhead(queries=("Q1", "Q3", "Q5"), events_per_partition=4000)
    for r in rows:
        print(
            f"{r.query}: flink={r.flink_rate:.0f}/s dsd1={r.rel_dsd1:.3f} "
            f"full={r.rel_full:.3f}"
        )
elif which == "fig6":
    from repro.trace import breakdown_extra_info

    runs = fig6_single_failure(
        query="Q3", events_per_partition=12000, kill_at=3.0, checkpoint_interval=1.5
    )
    for label, run in runs.items():
        print(label, "recovery_time:", run.recovery_time,
              "outputs:", len(run.result.output_values()))
        info = breakdown_extra_info(run.result)
        print(f"  incidents={info['incidents']} retries={info['retries']} "
              f"end_to_end={info['end_to_end_s']}s "
              f"(end: {', '.join(info.get('end_sources', []))})")
        for phase, seconds in info["phases"].items():
            print(f"    {phase:<22s} {seconds:.4f}s")
elif which == "table1":
    for cell in table1_assumptions(n_records=2500):
        print(
            f"{cell.mode:16s} det={cell.deterministic!s:5s} "
            f"lost={cell.lost} dup={cell.duplicated} inconsistent={cell.inconsistent} "
            f"exactly_once={cell.exactly_once}"
        )

print(f"[{time.time() - t0:.1f}s wall]", file=sys.stderr)
